package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/match"
)

// modelStore is the obviously-correct reference for the unexpected store: a
// flat arrival-ordered slice searched linearly.
type modelStore struct {
	envs []*match.Envelope
}

func (m *modelStore) insert(e *match.Envelope) { m.envs = append(m.envs, e) }

func (m *modelStore) take(r *match.Recv) *match.Envelope {
	for i, e := range m.envs {
		if r.Matches(e) {
			m.envs = append(m.envs[:i], m.envs[i+1:]...)
			return e
		}
	}
	return nil
}

// TestUnexpectedStoreMatchesModel drives random insert/take interleavings
// through the quadruply-indexed store and the flat model, requiring
// identical envelopes on every take — across all wildcard classes and bin
// counts.
func TestUnexpectedStoreMatchesModel(t *testing.T) {
	type scenario struct {
		Bins uint8
		Seed int64
	}
	f := func(sc scenario) bool {
		bins := int(sc.Bins%64) + 1
		rng := rand.New(rand.NewSource(sc.Seed))
		store := newUnexpectedStore(bins)
		model := &modelStore{}
		var seq uint64

		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 {
				seq++
				env := &match.Envelope{
					Source: match.Rank(rng.Intn(5)),
					Tag:    match.Tag(rng.Intn(5)),
					Comm:   match.CommID(rng.Intn(2)),
					Seq:    seq,
				}
				store.insert(env)
				model.insert(env)
				continue
			}
			r := &match.Recv{
				Source: match.Rank(rng.Intn(5)),
				Tag:    match.Tag(rng.Intn(5)),
				Comm:   match.CommID(rng.Intn(2)),
			}
			if rng.Intn(4) == 0 {
				r.Source = match.AnySource
			}
			if rng.Intn(4) == 0 {
				r.Tag = match.AnyTag
			}
			got, _ := store.takeMatch(r)
			want := model.take(r)
			if (got == nil) != (want == nil) {
				t.Logf("bins=%d op=%d recv=%v: store=%v model=%v", bins, op, r, got, want)
				return false
			}
			if got != nil && got.Seq != want.Seq {
				t.Logf("bins=%d op=%d recv=%v: store seq %d, model seq %d", bins, op, r, got.Seq, want.Seq)
				return false
			}
		}
		return store.len() == len(model.envs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSeqIDCompatibleRuns checks the §III-D3a sequence-ID bookkeeping: the
// host increments the sequence exactly when consecutive posts are
// incompatible, for arbitrary post streams.
func TestSeqIDCompatibleRuns(t *testing.T) {
	f := func(keys []uint8) bool {
		m := MustNew(Config{Bins: 16, MaxReceives: 4096, BlockSize: 1, LazyRemoval: true})
		var lastKey uint8
		var have bool
		var lastSeq uint64
		for i, k := range keys {
			if i >= 2000 {
				break
			}
			r := &match.Recv{Source: match.Rank(k % 4), Tag: match.Tag(k / 4)}
			if _, _, err := m.PostRecv(r); err != nil {
				return false
			}
			seq := m.nextSeqID
			if have {
				if k == lastKey && seq != lastSeq {
					t.Logf("compatible post bumped sequence: key %d", k)
					return false
				}
				if k != lastKey && seq == lastSeq {
					t.Logf("incompatible post kept sequence: %d after %d", k, lastKey)
					return false
				}
			}
			lastKey, have, lastSeq = k, true, seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
