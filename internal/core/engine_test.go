package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/match/matchtest"
)

// runBlocks drives a scenario through the engine, grouping consecutive
// arrivals into parallel blocks of up to blockN messages, exactly as the
// DPA does over the incoming message stream.
func runBlocks(t *testing.T, m *core.OptimisticMatcher, ops []matchtest.Op, blockN int) (pairings []match.Pairing, posted, unexpected int) {
	t.Helper()
	var seq uint64
	var pending []*match.Envelope

	flush := func() {
		if len(pending) == 0 {
			return
		}
		for _, res := range m.ArriveBlock(pending) {
			if !res.Unexpected {
				pairings = append(pairings, match.Pairing{MsgSeq: res.Env.Seq, RecvLabel: res.Recv.Label})
			}
		}
		pending = pending[:0]
	}

	for _, op := range ops {
		if op.Post {
			flush()
			r := &match.Recv{Source: op.Src, Tag: op.Tag, Comm: op.Comm}
			env, ok, err := m.PostRecv(r)
			if err != nil {
				t.Fatalf("PostRecv: %v", err)
			}
			if ok {
				pairings = append(pairings, match.Pairing{MsgSeq: env.Seq, RecvLabel: r.Label})
			}
		} else {
			seq++
			pending = append(pending, &match.Envelope{Source: op.Src, Tag: op.Tag, Comm: op.Comm, Seq: seq})
			if len(pending) == blockN {
				flush()
			}
		}
	}
	flush()
	return pairings, m.PostedDepth(), m.UnexpectedDepth()
}

func engineConfig(bins, blockN int, mutate func(*core.Config)) core.Config {
	cfg := core.Config{
		Bins:              bins,
		MaxReceives:       4096,
		BlockSize:         blockN,
		EarlyBookingCheck: true,
		LazyRemoval:       true,
		UseInlineHashes:   true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// TestParallelBlocksMatchGolden is the central correctness property: for
// random scenarios across wildcard mixes, burstiness, and key-space shapes,
// block-parallel optimistic matching must produce exactly the pairing that
// the sequential golden model produces — MPI matching is deterministic
// under constraints C1 and C2.
func TestParallelBlocksMatchGolden(t *testing.T) {
	cfgs := []matchtest.Config{
		matchtest.DefaultConfig(),
		{Sources: 2, Tags: 2, Comms: 1, PSrcWild: 0.4, PTagWild: 0.4},
		{Sources: 1, Tags: 1, Comms: 1},                               // single key: pure conflict storm
		{Sources: 1, Tags: 1, Comms: 1, PSrcWild: 0.5, PTagWild: 0.5}, // conflicts + wildcards
		{Sources: 4, Tags: 2, Comms: 1, Burstiness: 8},                // compatible sequences
		{Sources: 16, Tags: 16, Comms: 2},                             // spread keys, few conflicts
		{Sources: 3, Tags: 3, Comms: 1, PPost: 0.25, Burstiness: 4},   // arrival floods
		{Sources: 3, Tags: 3, Comms: 1, PPost: 0.75, Burstiness: 4},   // receive floods
	}
	blockNs := []int{1, 2, 3, 4, 8, 16, 32}
	for ci, sc := range cfgs {
		for _, bn := range blockNs {
			rng := rand.New(rand.NewSource(int64(100*ci + bn)))
			for iter := 0; iter < 6; iter++ {
				ops := matchtest.Generate(rng, 300, sc)
				gold, gp, gu := matchtest.Run(match.NewListMatcher(), ops)

				m := core.MustNew(engineConfig(64, bn, nil))
				got, pp, pu := runBlocks(t, m, ops, bn)
				if diff := matchtest.DiffPairings(gold, got); diff != "" {
					t.Fatalf("scenario %d block %d iter %d: %s", ci, bn, iter, diff)
				}
				if gp != pp || gu != pu {
					t.Fatalf("scenario %d block %d iter %d: depths golden (%d,%d) engine (%d,%d)",
						ci, bn, iter, gp, gu, pp, pu)
				}
			}
		}
	}
}

// TestAblationsMatchGolden re-runs the equivalence property with each
// optimization toggled: the §IV-D optimizations must never change results.
func TestAblationsMatchGolden(t *testing.T) {
	mutations := map[string]func(*core.Config){
		"no-early-check":   func(c *core.Config) { c.EarlyBookingCheck = false },
		"eager-removal":    func(c *core.Config) { c.LazyRemoval = false },
		"no-inline-hashes": func(c *core.Config) { c.UseInlineHashes = false },
		"no-fast-path":     func(c *core.Config) { c.DisableFastPath = true },
		"one-bin":          func(c *core.Config) { c.Bins = 1 },
		"simultaneous":     func(c *core.Config) { c.SimultaneousArrival = true },
		"simultaneous-raw": func(c *core.Config) { c.SimultaneousArrival = true; c.EarlyBookingCheck = false },
		"condvar-barrier":  func(c *core.Config) { c.CondvarBarrier = true },
	}
	sc := matchtest.Config{Sources: 2, Tags: 2, Comms: 1, PSrcWild: 0.3, PTagWild: 0.3, Burstiness: 5}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for iter := 0; iter < 8; iter++ {
				ops := matchtest.Generate(rng, 300, sc)
				gold, _, _ := matchtest.Run(match.NewListMatcher(), ops)
				cfg := engineConfig(64, 16, mut)
				if cfg.Bins == 0 {
					cfg.Bins = 1
				}
				m := core.MustNew(cfg)
				got, _, _ := runBlocks(t, m, ops, 16)
				if diff := matchtest.DiffPairings(gold, got); diff != "" {
					t.Fatalf("iter %d: %s", iter, diff)
				}
			}
		})
	}
}

// TestSequentialAdapterMatchesGolden runs the match.Matcher adapter through
// the shared scenario driver.
func TestSequentialAdapterMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 10; iter++ {
		ops := matchtest.Generate(rng, 500, matchtest.DefaultConfig())
		gold, gp, gu := matchtest.Run(match.NewListMatcher(), ops)
		m := core.MustNew(engineConfig(32, 1, nil))
		got, pp, pu := matchtest.Run(m.Sequential(), ops)
		if diff := matchtest.DiffPairings(gold, got); diff != "" {
			t.Fatalf("iter %d: %s", iter, diff)
		}
		if gp != pp || gu != pu {
			t.Fatalf("iter %d: depth mismatch", iter)
		}
	}
}

// TestConflictFreeBlocksStayOptimistic reproduces the paper's no-conflict
// scenario (Fig. 8 "NC"): distinct (source,tag) keys mean every thread
// books a different receive, so no conflict resolution ever runs.
func TestConflictFreeBlocksStayOptimistic(t *testing.T) {
	m := core.MustNew(engineConfig(256, 32, nil))
	const n = 32
	for i := 0; i < n; i++ {
		if _, _, err := m.PostRecv(&match.Recv{Source: match.Rank(i), Tag: match.Tag(i)}); err != nil {
			t.Fatal(err)
		}
	}
	envs := make([]*match.Envelope, n)
	for i := range envs {
		envs[i] = &match.Envelope{Source: match.Rank(i), Tag: match.Tag(i)}
	}
	for _, res := range m.ArriveBlock(envs) {
		if res.Unexpected || res.Path != core.PathOptimistic {
			t.Fatalf("expected optimistic match, got %+v", res)
		}
	}
	st := m.Stats()
	if st.Conflicts != 0 || st.FastPath != 0 || st.SlowPath != 0 {
		t.Fatalf("conflict-free run recorded conflicts: %+v", st)
	}
	if st.Optimistic != n {
		t.Fatalf("Optimistic = %d, want %d", st.Optimistic, n)
	}
}

// TestFastPathOnCompatibleSequence reproduces the Fig. 8 "WC-FP" scenario:
// a long run of receives with identical (source,tag) and a block of
// messages all matching them. All threads book the sequence head; the fast
// path shifts each thread to its own receive. The early booking check is
// disabled here: with it on, threads skip already-booked entries during the
// search and spread over the sequence without conflicting at all (see
// TestEarlyBookingCheckAvoidsConflicts).
func TestFastPathOnCompatibleSequence(t *testing.T) {
	m := core.MustNew(engineConfig(256, 16, func(c *core.Config) {
		c.EarlyBookingCheck = false
		c.SimultaneousArrival = true
	}))
	const n = 16
	labels := make([]uint64, n)
	for i := 0; i < n; i++ {
		r := &match.Recv{Source: 1, Tag: 7}
		if _, _, err := m.PostRecv(r); err != nil {
			t.Fatal(err)
		}
		labels[i] = r.Label
	}
	envs := make([]*match.Envelope, n)
	for i := range envs {
		envs[i] = &match.Envelope{Source: 1, Tag: 7}
	}
	results := m.ArriveBlock(envs)
	for i, res := range results {
		if res.Unexpected {
			t.Fatalf("message %d went unexpected", i)
		}
		if res.Recv.Label != labels[i] {
			t.Fatalf("message %d matched label %d, want %d (shift order)", i, res.Recv.Label, labels[i])
		}
	}
	st := m.Stats()
	if st.FastPath == 0 {
		t.Fatalf("fast path never taken: %+v", st)
	}
	if st.SlowPath != 0 {
		t.Fatalf("slow path taken %d times in a pure compatible sequence", st.SlowPath)
	}
}

// TestSlowPathWhenFastPathDisabled is the Fig. 8 "WC-SP" scenario.
func TestSlowPathWhenFastPathDisabled(t *testing.T) {
	m := core.MustNew(engineConfig(256, 16, func(c *core.Config) {
		c.DisableFastPath = true
		c.EarlyBookingCheck = false
		c.SimultaneousArrival = true
	}))
	const n = 16
	for i := 0; i < n; i++ {
		if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7}); err != nil {
			t.Fatal(err)
		}
	}
	envs := make([]*match.Envelope, n)
	for i := range envs {
		envs[i] = &match.Envelope{Source: 1, Tag: 7}
	}
	results := m.ArriveBlock(envs)
	var last uint64
	for i, res := range results {
		if res.Unexpected {
			t.Fatalf("message %d went unexpected", i)
		}
		if i > 0 && res.Recv.Label <= last {
			t.Fatalf("ordering violated on slow path: label %d after %d", res.Recv.Label, last)
		}
		last = res.Recv.Label
	}
	st := m.Stats()
	if st.SlowPath == 0 {
		t.Fatalf("slow path never taken: %+v", st)
	}
	if st.FastPath != 0 {
		t.Fatalf("fast path taken despite DisableFastPath: %+v", st)
	}
}

// TestEarlyBookingCheckAvoidsConflicts: with the §IV-D early booking check
// enabled, threads skip entries already booked by lower threads during the
// optimistic search and spread over a compatible sequence, so a with-
// conflict workload still pairs correctly whichever mixture of paths the
// timing produces.
func TestEarlyBookingCheckAvoidsConflicts(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		m := core.MustNew(engineConfig(256, 16, nil))
		const n = 16
		for i := 0; i < n; i++ {
			if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7}); err != nil {
				t.Fatal(err)
			}
		}
		envs := make([]*match.Envelope, n)
		for i := range envs {
			envs[i] = &match.Envelope{Source: 1, Tag: 7}
		}
		for i, res := range m.ArriveBlock(envs) {
			if res.Unexpected {
				t.Fatalf("iter %d: message %d went unexpected", iter, i)
			}
			if res.Recv.Label != uint64(i) {
				t.Fatalf("iter %d: message %d matched label %d, want %d",
					iter, i, res.Recv.Label, i)
			}
		}
		st := m.Stats()
		if st.Optimistic+st.FastPath+st.SlowPath < n {
			t.Fatalf("iter %d: path accounting too low: %+v", iter, st)
		}
	}
}

// TestSequenceShorterThanBlock: when the compatible sequence runs out, the
// overflow threads must fall to the slow path and the surplus messages go
// unexpected, preserving order.
func TestSequenceShorterThanBlock(t *testing.T) {
	m := core.MustNew(engineConfig(256, 8, nil))
	for i := 0; i < 3; i++ {
		if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7}); err != nil {
			t.Fatal(err)
		}
	}
	envs := make([]*match.Envelope, 8)
	for i := range envs {
		envs[i] = &match.Envelope{Source: 1, Tag: 7}
	}
	results := m.ArriveBlock(envs)
	for i := 0; i < 3; i++ {
		if results[i].Unexpected {
			t.Fatalf("message %d should have matched", i)
		}
	}
	for i := 3; i < 8; i++ {
		if !results[i].Unexpected {
			t.Fatalf("message %d should be unexpected", i)
		}
	}
	// The unexpected messages must later match receives in arrival order.
	for want := uint64(4); want <= 8; want++ {
		env, ok, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7})
		if err != nil || !ok {
			t.Fatalf("unexpected store drain failed at seq %d", want)
		}
		if env.Seq != want {
			t.Fatalf("drained seq %d, want %d", env.Seq, want)
		}
	}
}

// TestBrokenSequenceForcesSlowPath: an incompatible receive posted between
// two same-key runs breaks the sequence ID, so the fast-path shift must
// stop at the boundary rather than skip over the interloper.
func TestBrokenSequenceForcesSlowPath(t *testing.T) {
	m := core.MustNew(engineConfig(256, 4, nil))
	m.PostRecv(&match.Recv{Source: 1, Tag: 7}) // seq A
	m.PostRecv(&match.Recv{Source: 1, Tag: 7}) // seq A
	m.PostRecv(&match.Recv{Source: 2, Tag: 9}) // interloper, breaks sequence
	m.PostRecv(&match.Recv{Source: 1, Tag: 7}) // seq B
	m.PostRecv(&match.Recv{Source: 1, Tag: 7}) // seq B

	envs := make([]*match.Envelope, 4)
	for i := range envs {
		envs[i] = &match.Envelope{Source: 1, Tag: 7}
	}
	results := m.ArriveBlock(envs)
	var labels []uint64
	for i, res := range results {
		if res.Unexpected {
			t.Fatalf("message %d went unexpected", i)
		}
		labels = append(labels, res.Recv.Label)
	}
	want := []uint64{0, 1, 3, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

// TestTableFullFallback: exhausting the descriptor table must surface
// ErrTableFull (the software-fallback trigger), and capacity must recover
// once receives are consumed.
func TestTableFullFallback(t *testing.T) {
	cfg := engineConfig(16, 4, nil)
	cfg.MaxReceives = 2
	m := core.MustNew(cfg)
	m.PostRecv(&match.Recv{Source: 1, Tag: 1})
	m.PostRecv(&match.Recv{Source: 2, Tag: 2})
	if _, _, err := m.PostRecv(&match.Recv{Source: 3, Tag: 3}); err != core.ErrTableFull {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	if m.Stats().TableFull != 1 {
		t.Fatal("TableFull stat not recorded")
	}
	// Consume one receive; a slot must free up.
	m.Arrive(&match.Envelope{Source: 1, Tag: 1})
	if _, _, err := m.PostRecv(&match.Recv{Source: 4, Tag: 4}); err != nil {
		t.Fatalf("slot not recycled: %v", err)
	}
}

// TestMemoryFootprint checks the §IV-E numbers: 128 bins cost 7.5 KiB over
// the three tables, and 8 K receives cost 512 KiB of descriptors — "about
// 520 KiB of DPA memory".
func TestMemoryFootprint(t *testing.T) {
	cfg := engineConfig(128, 32, nil)
	cfg.MaxReceives = 8192
	m := core.MustNew(cfg)
	f := m.ModelFootprint()
	if f.BinBytes != 3*128*20 {
		t.Fatalf("BinBytes = %d, want %d", f.BinBytes, 3*128*20)
	}
	if f.BinBytes != 7680 { // 7.5 KiB
		t.Fatalf("BinBytes = %d, want 7680 (7.5 KiB)", f.BinBytes)
	}
	if f.DescriptorBytes != 8192*64 {
		t.Fatalf("DescriptorBytes = %d, want %d", f.DescriptorBytes, 8192*64)
	}
	totalKiB := float64(f.Total()) / 1024
	if totalKiB < 519 || totalKiB > 521 {
		t.Fatalf("total = %.1f KiB, want about 520 KiB", totalKiB)
	}
}

// TestConfigValidation covers the constructor's error paths.
func TestConfigValidation(t *testing.T) {
	bad := []core.Config{
		{Bins: 0, MaxReceives: 1, BlockSize: 1},
		{Bins: 1, MaxReceives: 0, BlockSize: 1},
		{Bins: 1, MaxReceives: 1, BlockSize: 0},
		{Bins: 1, MaxReceives: 1, BlockSize: core.MaxBlockSize + 1},
	}
	for i, cfg := range bad {
		if _, err := core.New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := core.New(core.DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on a bad config")
		}
	}()
	core.MustNew(core.Config{})
}

// TestWildcardReceivesAcrossIndexes: constraint C1 must hold between
// indexes — a both-wildcard receive posted first beats a full-key receive
// posted second, whichever index they live in.
func TestWildcardReceivesAcrossIndexes(t *testing.T) {
	m := core.MustNew(engineConfig(64, 4, nil))
	r0 := &match.Recv{Source: match.AnySource, Tag: match.AnyTag}
	r1 := &match.Recv{Source: 5, Tag: 5}
	r2 := &match.Recv{Source: match.AnySource, Tag: 5}
	r3 := &match.Recv{Source: 5, Tag: match.AnyTag}
	for _, r := range []*match.Recv{r0, r1, r2, r3} {
		if _, _, err := m.PostRecv(r); err != nil {
			t.Fatal(err)
		}
	}
	order := make([]uint64, 0, 4)
	for i := 0; i < 4; i++ {
		res := m.Arrive(&match.Envelope{Source: 5, Tag: 5})
		if res.Unexpected {
			t.Fatalf("arrival %d went unexpected", i)
		}
		order = append(order, res.Recv.Label)
	}
	for i, label := range order {
		if label != uint64(i) {
			t.Fatalf("C1 across indexes violated: order %v", order)
		}
	}
}

// TestEngineStatsReset exercises the bookkeeping accessors.
func TestEngineStatsReset(t *testing.T) {
	m := core.MustNew(engineConfig(16, 2, nil))
	m.Arrive(&match.Envelope{Source: 1, Tag: 1})
	if m.Stats().Messages != 1 || m.Stats().Unexpected != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	m.ResetStats()
	if m.Stats().Messages != 0 {
		t.Fatal("ResetStats did not clear")
	}
	if m.DepthStats().ArriveSearches != 1 {
		t.Fatal("depth stats cleared by ResetStats")
	}
	m.ResetDepthStats()
	if m.DepthStats().ArriveSearches != 0 {
		t.Fatal("ResetDepthStats did not clear")
	}
	if m.Config().Bins != 16 {
		t.Fatal("Config accessor wrong")
	}
}

// TestPublicAccessors covers the thin engine accessors end to end.
func TestPublicAccessors(t *testing.T) {
	m := core.MustNew(engineConfig(16, 2, nil))
	seq := m.Sequential()

	// PeekUnexpected surfaces stored messages without consuming.
	m.Arrive(&match.Envelope{Source: 2, Tag: 3})
	if env, ok := m.PeekUnexpected(&match.Recv{Source: 2, Tag: 3}); !ok || env == nil {
		t.Fatal("PeekUnexpected missed a stored message")
	}
	if m.UnexpectedDepth() != 1 {
		t.Fatal("peek consumed the message")
	}

	// Occupancy reflects posted entries.
	if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	empty, total, maxChain := m.Occupancy()
	if total != 3*16 || empty != total-1 || maxChain != 1 {
		t.Fatalf("occupancy = (%d,%d,%d)", empty, total, maxChain)
	}

	// Sequential adapter stats mirror the engine's depth stats.
	if seq.Stats().ArriveSearches != m.DepthStats().ArriveSearches {
		t.Fatal("adapter Stats out of sync")
	}
	seq.ResetStats()
	if m.DepthStats().ArriveSearches != 0 {
		t.Fatal("adapter ResetStats did not clear")
	}
}
