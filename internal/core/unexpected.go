package core

import (
	"sync"

	"repro/internal/match"
)

// unexpectedStore keeps messages that arrived before a matching receive was
// posted. Mirroring §IV-C, each message is indexed in all four structures —
// a (source,tag)-keyed table, a tag-keyed table, a source-keyed table, and
// a global arrival-ordered list — so that a newly posted receive searches
// only the single index that corresponds to its wildcard class. All chains
// are kept sorted by arrival sequence so the oldest matching message is
// always found first (constraint C2).
//
// With blocks and posts running concurrently, s.mu doubles as the POST
// SERIALIZATION POINT: PostRecv performs its store search, label assignment,
// and descriptor publication under it, and a retiring block publishes its
// unexpected messages (after revalidating them against fresh posts) under it
// too. Either the post sees the message or the message's revalidation sees
// the post — a lost wakeup is impossible.
type unexpectedStore struct {
	mu   sync.Mutex
	bins int

	bySrcTag []uchain // key (source, tag, comm): searched by ClassNone receives
	byTag    []uchain // key (tag, comm): searched by ClassSrcWild receives
	bySrc    []uchain // key (source, comm): searched by ClassTagWild receives
	all      uchain   // arrival order: searched by ClassBothWild receives

	n int
}

// structure indices into uentry.links.
const (
	linkSrcTag = iota
	linkTag
	linkSrc
	linkAll
	numLinks
)

// uentry is one stored unexpected message, threaded on all four structures.
type uentry struct {
	env   *match.Envelope
	links [numLinks]ulink
	chain [numLinks]*uchain
}

type ulink struct {
	next, prev *uentry
}

// uchain is a doubly linked, arrival-ordered chain for one structure slot.
type uchain struct {
	head, tail *uentry
	n          int
}

// insertSorted places e so that the chain stays ordered by Envelope.Seq.
// Blocks finalize unexpected messages concurrently and slightly out of
// order, but always within one block of each other, so the backward walk
// from the tail is short.
func (c *uchain) insertSorted(e *uentry, li int) {
	pos := c.tail
	for pos != nil && pos.env.Seq > e.env.Seq {
		pos = pos.links[li].prev
	}
	if pos == nil { // new head
		e.links[li].next = c.head
		if c.head != nil {
			c.head.links[li].prev = e
		} else {
			c.tail = e
		}
		c.head = e
	} else {
		e.links[li].prev = pos
		e.links[li].next = pos.links[li].next
		if pos.links[li].next != nil {
			pos.links[li].next.links[li].prev = e
		} else {
			c.tail = e
		}
		pos.links[li].next = e
	}
	c.n++
}

// remove unlinks e from the chain for structure li.
func (c *uchain) remove(e *uentry, li int) {
	l := e.links[li]
	if l.prev == nil {
		c.head = l.next
	} else {
		l.prev.links[li].next = l.next
	}
	if l.next == nil {
		c.tail = l.prev
	} else {
		l.next.links[li].prev = l.prev
	}
	e.links[li] = ulink{}
	c.n--
}

func newUnexpectedStore(bins int) *unexpectedStore {
	return &unexpectedStore{
		bins:     bins,
		bySrcTag: make([]uchain, bins),
		byTag:    make([]uchain, bins),
		bySrc:    make([]uchain, bins),
	}
}

// insertLocked stores e in all four structures. Caller holds s.mu.
func (s *unexpectedStore) insertLocked(env *match.Envelope) {
	e := &uentry{env: env}

	c := &s.bySrcTag[match.HashSrcTag(env.Source, env.Tag, env.Comm)%uint64(s.bins)]
	e.chain[linkSrcTag] = c
	c.insertSorted(e, linkSrcTag)

	c = &s.byTag[match.HashTag(env.Tag, env.Comm)%uint64(s.bins)]
	e.chain[linkTag] = c
	c.insertSorted(e, linkTag)

	c = &s.bySrc[match.HashSrc(env.Source, env.Comm)%uint64(s.bins)]
	e.chain[linkSrc] = c
	c.insertSorted(e, linkSrc)

	e.chain[linkAll] = &s.all
	s.all.insertSorted(e, linkAll)

	s.n++
}

// takeMatchLocked searches the single structure matching r's wildcard class
// for the oldest matching message; on a hit the message is unlinked from all
// four structures. It returns the envelope (nil for no match) and the
// number of entries examined. Caller holds s.mu.
func (s *unexpectedStore) takeMatchLocked(r *match.Recv) (*match.Envelope, uint64) {
	var c *uchain
	var li int
	switch r.Class() {
	case match.ClassNone:
		c = &s.bySrcTag[match.HashSrcTag(r.Source, r.Tag, r.Comm)%uint64(s.bins)]
		li = linkSrcTag
	case match.ClassSrcWild:
		c = &s.byTag[match.HashTag(r.Tag, r.Comm)%uint64(s.bins)]
		li = linkTag
	case match.ClassTagWild:
		c = &s.bySrc[match.HashSrc(r.Source, r.Comm)%uint64(s.bins)]
		li = linkSrc
	default:
		c = &s.all
		li = linkAll
	}

	var depth uint64
	for e := c.head; e != nil; e = e.links[li].next {
		if r.Matches(e.env) {
			s.removeAll(e)
			return e.env, depth
		}
		depth++
	}
	return nil, depth
}

// insert stores e in all four structures (self-locking convenience).
func (s *unexpectedStore) insert(env *match.Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(env)
}

// takeMatch is the self-locking form of takeMatchLocked.
func (s *unexpectedStore) takeMatch(r *match.Recv) (*match.Envelope, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.takeMatchLocked(r)
}

// peek returns the oldest matching message without removing it.
func (s *unexpectedStore) peek(r *match.Recv) (*match.Envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var c *uchain
	var li int
	switch r.Class() {
	case match.ClassNone:
		c = &s.bySrcTag[match.HashSrcTag(r.Source, r.Tag, r.Comm)%uint64(s.bins)]
		li = linkSrcTag
	case match.ClassSrcWild:
		c = &s.byTag[match.HashTag(r.Tag, r.Comm)%uint64(s.bins)]
		li = linkTag
	case match.ClassTagWild:
		c = &s.bySrc[match.HashSrc(r.Source, r.Comm)%uint64(s.bins)]
		li = linkSrc
	default:
		c = &s.all
		li = linkAll
	}
	for e := c.head; e != nil; e = e.links[li].next {
		if r.Matches(e.env) {
			return e.env, true
		}
	}
	return nil, false
}

// removeAll unlinks e from every structure. Caller holds s.mu.
func (s *unexpectedStore) removeAll(e *uentry) {
	for li := 0; li < numLinks; li++ {
		e.chain[li].remove(e, li)
	}
	s.n--
}

// len returns the number of stored messages.
func (s *unexpectedStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
