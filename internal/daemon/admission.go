package daemon

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dpa"
	"repro/internal/obs"
)

// Clock abstracts time for the daemon so drain-deadline behavior is
// testable with a fake clock; the real daemon uses realClock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Budgets is the admission and backpressure policy, hot-reloadable via
// Reload (SIGHUP in cmd/matchd). Zero fields take defaults.
type Budgets struct {
	// MaxTenants bounds distinct tenants (default 16).
	MaxTenants int `json:"max_tenants,omitempty"`
	// TenantThreads is each tenant's DPA thread budget across its running
	// jobs: an offload job charges Ranks × Threads (default
	// dpa.MaxThreads, one BF3's worth per tenant; host/raw jobs charge 0).
	TenantThreads int `json:"tenant_threads,omitempty"`
	// TenantBytes is each tenant's modeled-memory budget (§IV-E /
	// bench.ModelFootprintBytes summed over a job's ranks; default 64 MiB).
	TenantBytes int `json:"tenant_bytes,omitempty"`
	// TenantJobs bounds one tenant's concurrently running jobs (default 8).
	TenantJobs int `json:"tenant_jobs,omitempty"`
	// MaxPostedPerComm bounds how many receives one job keeps posted per
	// communicator (default 256). A ring sequence wider than this runs in
	// paced windows — backpressure that throttles only the offending
	// tenant — counted in daemon_backpressure_waits.
	MaxPostedPerComm int `json:"max_posted_per_comm,omitempty"`
	// DrainTimeout bounds Drain: jobs still running past it are
	// force-canceled by closing their worlds (default 30s).
	DrainTimeout time.Duration `json:"-"`
	// DrainTimeoutSec is the config-file form of DrainTimeout.
	DrainTimeoutSec int `json:"drain_timeout_sec,omitempty"`
}

func (b *Budgets) fill() {
	if b.MaxTenants == 0 {
		b.MaxTenants = 16
	}
	if b.TenantThreads == 0 {
		b.TenantThreads = dpa.MaxThreads
	}
	if b.TenantBytes == 0 {
		b.TenantBytes = 64 << 20
	}
	if b.TenantJobs == 0 {
		b.TenantJobs = 8
	}
	if b.MaxPostedPerComm == 0 {
		b.MaxPostedPerComm = 256
	}
	if b.DrainTimeout == 0 {
		if b.DrainTimeoutSec > 0 {
			b.DrainTimeout = time.Duration(b.DrainTimeoutSec) * time.Second
		} else {
			b.DrainTimeout = 30 * time.Second
		}
	}
}

// specThreads is the DPA thread charge of one normalized spec: every rank
// of an offload job gets its own accelerator.
func specThreads(s *JobSpec) int {
	if s.Engine != "offload" {
		return 0
	}
	return s.Ranks * s.Threads
}

// specFootprint is the modeled resident bytes of one normalized spec,
// summed over its ranks. Offload jobs pin the full §IV-E model (index
// bins, descriptor table, block-slot envelopes); host and raw engines keep
// only descriptor state, so they are charged the descriptor table alone.
func specFootprint(s *JobSpec) int {
	if s.Engine == "offload" {
		per := bench.ModelFootprintBytes(bench.FootprintConfig{
			Bins:        s.Bins,
			MaxReceives: s.MaxReceives,
			BlockSize:   32,
			InFlight:    s.InFlight,
		})
		return s.Ranks * per
	}
	return s.Ranks * s.MaxReceives * core.DescriptorModelBytes
}

// tenant is one tenant's admission state and metric domain. Its sink
// carries the daemon lifecycle counters plus the merged matching counters
// of every finished job, so per-tenant /metrics stay bounded no matter how
// many jobs churn through.
type tenant struct {
	name        string
	sink        *obs.Sink
	threadsUsed int
	bytesUsed   int
	active      int
}

// AdmissionError is a typed rejection; Code is one of the protocol codes.
type AdmissionError struct {
	Code   string
	Reason string
}

func (e *AdmissionError) Error() string { return e.Reason }

func overBudget(format string, args ...any) error {
	return &AdmissionError{Code: CodeOverBudget, Reason: fmt.Sprintf(format, args...)}
}

// admit charges spec against its tenant's budgets, creating the tenant on
// first contact. Caller holds d.mu. On rejection nothing is charged and
// the typed error names the exhausted budget.
func (d *Daemon) admit(spec *JobSpec, fp, threads int) (*tenant, error) {
	t := d.tenants[spec.Tenant]
	if t == nil {
		if len(d.tenants) >= d.budgets.MaxTenants {
			return nil, overBudget("tenant limit reached (%d tenants)", d.budgets.MaxTenants)
		}
		t = &tenant{name: spec.Tenant, sink: obs.New(obs.Options{})}
		d.tenants[spec.Tenant] = t
	}
	b := d.budgets
	switch {
	case t.active >= b.TenantJobs:
		return nil, overBudget("tenant %s already runs %d jobs (limit %d)", t.name, t.active, b.TenantJobs)
	case threads > 0 && t.threadsUsed+threads > b.TenantThreads:
		return nil, overBudget("tenant %s DPA thread budget exhausted: %d in use + %d asked > %d",
			t.name, t.threadsUsed, threads, b.TenantThreads)
	case t.bytesUsed+fp > b.TenantBytes:
		return nil, overBudget("tenant %s memory budget exhausted: %d bytes in use + %d modeled > %d",
			t.name, t.bytesUsed, fp, b.TenantBytes)
	}
	t.threadsUsed += threads
	t.bytesUsed += fp
	t.active++
	return t, nil
}

// release returns a finished job's charges. Caller holds d.mu.
func (d *Daemon) release(t *tenant, fp, threads int) {
	t.threadsUsed -= threads
	t.bytesUsed -= fp
	t.active--
}
