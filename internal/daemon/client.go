package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// RemoteError is a typed rejection from the daemon, carrying the
// protocol's error code.
type RemoteError struct {
	Code string
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// Client speaks the JSON-lines control protocol. One request is in flight
// at a time (the protocol is strictly request/reply per line); methods are
// serialized by an internal lock, so a Client may be shared.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a daemon's control address.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 64<<10), enc: json.NewEncoder(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) do(req Request) (*Response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return nil, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("daemon connection: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("malformed daemon reply: %v", err)
	}
	if !resp.OK {
		code := resp.Code
		if code == "" {
			code = CodeInternal
		}
		return nil, &RemoteError{Code: code, Msg: resp.Error}
	}
	return &resp, nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	_, err := c.do(Request{Op: OpPing})
	return err
}

// Submit submits one job and returns its initial status.
func (c *Client) Submit(spec JobSpec) (*JobStatus, error) {
	resp, err := c.do(Request{Op: OpSubmit, Job: &spec})
	if err != nil {
		return nil, err
	}
	if resp.Job == nil {
		return nil, fmt.Errorf("daemon reply missing job status")
	}
	return resp.Job, nil
}

// Status fetches one job's state.
func (c *Client) Status(id string) (*JobStatus, error) {
	resp, err := c.do(Request{Op: OpStatus, ID: id})
	if err != nil {
		return nil, err
	}
	if resp.Job == nil {
		return nil, fmt.Errorf("daemon reply missing job status")
	}
	return resp.Job, nil
}

// Cancel requests a job's cancellation and returns its status.
func (c *Client) Cancel(id string) (*JobStatus, error) {
	resp, err := c.do(Request{Op: OpCancel, ID: id})
	if err != nil {
		return nil, err
	}
	if resp.Job == nil {
		return nil, fmt.Errorf("daemon reply missing job status")
	}
	return resp.Job, nil
}

// List fetches every job's status.
func (c *Client) List() ([]JobStatus, error) {
	resp, err := c.do(Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Wait polls until the job reaches a terminal state or the timeout
// expires (timeout <= 0 waits forever).
func (c *Client) Wait(id string, timeout time.Duration) (*JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
