package daemon

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock drives drain deadlines deterministically: After never fires
// until the test calls fire.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	return ch
}

// pending reports how many After channels are armed.
func (c *fakeClock) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// fire expires every armed After channel.
func (c *fakeClock) fire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.waiters {
		ch <- c.now
	}
	c.waiters = nil
}

func admissionCode(t *testing.T, err error) string {
	t.Helper()
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("got %v (%T), want *AdmissionError", err, err)
	}
	return adm.Code
}

// TestAdmissionOverBudgetRejected pins the §IV-E budget gate: a job asking
// past its tenant's DPA-thread or memory budget is rejected with a typed
// reason naming the exhausted budget, and the rejection charges nothing —
// a fitting job from the same tenant, and any job from another tenant,
// still admit.
func TestAdmissionOverBudgetRejected(t *testing.T) {
	d := New(Config{
		Budgets: Budgets{TenantThreads: 64, TenantBytes: 32 << 20},
		Clock:   newFakeClock(),
	})

	// 2 ranks × 32 threads = the whole 64-thread budget.
	full := JobSpec{Tenant: "alpha", Engine: "offload", Ranks: 2, Threads: 32, K: 2, Reps: 1}
	st, err := d.Submit(full)
	if err != nil {
		t.Fatalf("first offload job: %v", err)
	}
	// A second offload thread-ask must bounce while the first runs.
	_, err = d.Submit(JobSpec{Tenant: "alpha", Engine: "offload", Ranks: 1, Threads: 1, K: 2, Reps: 1})
	if code := admissionCode(t, err); code != CodeOverBudget {
		t.Fatalf("thread-over-budget code = %s, want %s", code, CodeOverBudget)
	} else if !strings.Contains(err.Error(), "thread") {
		t.Fatalf("rejection reason %q does not name the thread budget", err)
	}
	// The same tenant still fits a host job (no thread charge)...
	if _, err := d.Submit(JobSpec{Tenant: "alpha", Engine: "host", Ranks: 2, K: 2, Reps: 1}); err != nil {
		t.Fatalf("host job within budget: %v", err)
	}
	// ...and another tenant's budget is untouched.
	if _, err := d.Submit(JobSpec{Tenant: "beta", Engine: "offload", Ranks: 2, Threads: 32, K: 2, Reps: 1}); err != nil {
		t.Fatalf("other tenant's offload job: %v", err)
	}

	// Memory budget: a table ask modeled past TenantBytes is rejected with
	// a reason naming memory.
	_, err = d.Submit(JobSpec{Tenant: "alpha", Engine: "host", Ranks: 8, MaxReceives: MaxReceivesCap, K: 2, Reps: 1})
	if code := admissionCode(t, err); code != CodeOverBudget {
		t.Fatalf("memory-over-budget code = %s, want %s", code, CodeOverBudget)
	} else if !strings.Contains(err.Error(), "memory") {
		t.Fatalf("rejection reason %q does not name the memory budget", err)
	}

	// Once the first job finishes its charges return and the thread ask
	// that bounced now admits.
	if _, err := d.WaitJob(st.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	waitAllTerminal(t, d)
	if _, err := d.Submit(JobSpec{Tenant: "alpha", Engine: "offload", Ranks: 1, Threads: 1, K: 2, Reps: 1}); err != nil {
		t.Fatalf("offload job after release: %v", err)
	}
	waitAllTerminal(t, d)
}

// waitAllTerminal blocks until every submitted job settles.
func waitAllTerminal(t *testing.T, d *Daemon) {
	t.Helper()
	for _, st := range d.List() {
		if _, err := d.WaitJob(st.ID); err != nil {
			t.Fatalf("WaitJob(%s): %v", st.ID, err)
		}
	}
}

// TestTenantJobLimit pins the concurrency gate: one tenant's running-job
// count is capped; the cap does not bleed across tenants.
func TestTenantJobLimit(t *testing.T) {
	d := New(Config{Budgets: Budgets{TenantJobs: 1}, Clock: newFakeClock()})
	st, err := d.Submit(JobSpec{Tenant: "alpha", K: 2, Reps: 1})
	if err != nil {
		t.Fatalf("first job: %v", err)
	}
	if _, err := d.Submit(JobSpec{Tenant: "alpha", K: 2, Reps: 1}); err == nil {
		t.Fatalf("second concurrent job admitted past TenantJobs=1")
	} else if code := admissionCode(t, err); code != CodeOverBudget {
		t.Fatalf("job-limit code = %s, want %s", code, CodeOverBudget)
	}
	if _, err := d.Submit(JobSpec{Tenant: "beta", K: 2, Reps: 1}); err != nil {
		t.Fatalf("other tenant blocked by alpha's job limit: %v", err)
	}
	if _, err := d.WaitJob(st.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if _, err := d.Submit(JobSpec{Tenant: "alpha", K: 2, Reps: 1}); err != nil {
		t.Fatalf("job after release: %v", err)
	}
	waitAllTerminal(t, d)
}

// TestBackpressurePacesOffendingTenantOnly pins the bounded posted-receive
// depth: a tenant whose sequences exceed MaxPostedPerComm completes in
// paced windows — each extra window one daemon_backpressure_waits tick on
// that tenant — while a tenant within the bound records none.
func TestBackpressurePacesOffendingTenantOnly(t *testing.T) {
	const postCap = 4
	d := New(Config{Budgets: Budgets{MaxPostedPerComm: postCap}, Clock: newFakeClock()})

	wide := JobSpec{Tenant: "greedy", Ranks: 2, K: 16, Reps: 3} // 4 windows per sequence
	narrow := JobSpec{Tenant: "modest", Ranks: 2, K: postCap, Reps: 3}
	stW, err := d.Submit(wide)
	if err != nil {
		t.Fatalf("wide job: %v", err)
	}
	stN, err := d.Submit(narrow)
	if err != nil {
		t.Fatalf("narrow job: %v", err)
	}
	fw, err := d.WaitJob(stW.ID)
	if err != nil || fw.State != "done" {
		t.Fatalf("wide job ended %s (%v): %s", fw.State, err, fw.Error)
	}
	fn, err := d.WaitJob(stN.ID)
	if err != nil || fn.State != "done" {
		t.Fatalf("narrow job ended %s (%v): %s", fn.State, err, fn.Error)
	}

	d.mu.Lock()
	greedy := d.tenants["greedy"].sink.Counters.Load(obs.CtrDaemonBackpressure)
	modest := d.tenants["modest"].sink.Counters.Load(obs.CtrDaemonBackpressure)
	d.mu.Unlock()
	// 16/4 = 4 windows per sequence, 3 of them backpressure-born, per rank
	// per repetition.
	want := uint64(wide.Ranks * wide.Reps * (wide.K/postCap - 1))
	if greedy != want {
		t.Errorf("greedy tenant backpressure waits = %d, want %d", greedy, want)
	}
	if modest != 0 {
		t.Errorf("modest tenant backpressure waits = %d, want 0", modest)
	}
	if fw.Messages != wide.Ranks*wide.K*wide.Reps {
		t.Errorf("wide job messages = %d, want %d", fw.Messages, wide.Ranks*wide.K*wide.Reps)
	}
}

// TestDrainCleanCompletesWithoutDeadline pins the happy drain: running
// jobs flush, Drain returns zero forced cancels, and the deadline timer is
// never consulted past arming.
func TestDrainCleanCompletesWithoutDeadline(t *testing.T) {
	clk := newFakeClock()
	d := New(Config{Budgets: Budgets{}, Clock: clk})
	st, err := d.Submit(JobSpec{Tenant: "alpha", K: 4, Reps: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	forced, err := d.Drain()
	if err != nil || forced != 0 {
		t.Fatalf("Drain = (%d, %v), want (0, nil)", forced, err)
	}
	if !d.Draining() {
		t.Fatalf("daemon not draining after Drain")
	}
	if _, err := d.Submit(JobSpec{Tenant: "alpha", K: 2, Reps: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit: got %v, want ErrDraining", err)
	}
	fin, err := d.Status(st.ID)
	if err != nil || fin.State != "done" {
		t.Fatalf("drained job state %s (%v), want done", fin.State, err)
	}
}

// TestDrainDeadlineForceCancels pins the bounded drain: a job that cannot
// flush before the (fake-clock) deadline is force-canceled — its worlds
// close, mpi.ErrClosed unblocks the workload — and Drain itself returns
// within real-time bounds instead of hanging on the straggler.
func TestDrainDeadlineForceCancels(t *testing.T) {
	clk := newFakeClock()
	d := New(Config{Budgets: Budgets{}, Clock: clk})
	// A ring long enough to outlive any test timeout if never canceled.
	st, err := d.Submit(JobSpec{Tenant: "slow", Ranks: 2, K: 64, Reps: MaxReps})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	drained := make(chan int, 1)
	go func() {
		forced, _ := d.Drain()
		drained <- forced
	}()
	// Wait for Drain to arm its deadline, then expire it.
	deadline := time.Now().Add(5 * time.Second)
	for clk.pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Drain never armed its deadline timer")
		}
		time.Sleep(time.Millisecond)
	}
	clk.fire()

	select {
	case forced := <-drained:
		if forced != 1 {
			t.Errorf("Drain forced %d jobs, want 1", forced)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Drain still blocked 10s after its deadline fired")
	}
	fin, err := d.Status(st.ID)
	if err != nil || fin.State != "canceled" {
		t.Fatalf("forced job state %s (%v), want canceled", fin.State, err)
	}
	d.mu.Lock()
	canceled := d.tenants["slow"].sink.Counters.Load(obs.CtrDaemonCanceled)
	d.mu.Unlock()
	if canceled != 1 {
		t.Errorf("tenant canceled counter = %d, want 1", canceled)
	}
}

// TestCancelRunningJob pins explicit cancellation through the public
// surface: the job settles canceled, its charges return, and a successor
// job admits.
func TestCancelRunningJob(t *testing.T) {
	d := New(Config{Budgets: Budgets{TenantJobs: 1}, Clock: newFakeClock()})
	st, err := d.Submit(JobSpec{Tenant: "alpha", Ranks: 2, K: 64, Reps: MaxReps})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := d.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	fin, err := d.WaitJob(st.ID)
	if err != nil || fin.State != "canceled" {
		t.Fatalf("canceled job state %s (%v), want canceled", fin.State, err)
	}
	if _, err := d.Submit(JobSpec{Tenant: "alpha", K: 2, Reps: 1}); err != nil {
		t.Fatalf("job after cancel released charges: %v", err)
	}
	waitAllTerminal(t, d)
}
