package daemon

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/tracegen"
)

// ErrDraining rejects submissions once Drain has begun.
var ErrDraining = errors.New("daemon is draining")

// Config configures a Daemon.
type Config struct {
	// Budgets is the initial admission policy (zero fields defaulted).
	Budgets Budgets
	// Clock defaults to the real clock; tests inject a fake one to pin
	// drain-deadline behavior.
	Clock Clock
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Daemon hosts many tenants' matching jobs in one process. All state is
// guarded by mu; job workloads run on their own goroutines and report back
// through finishJob.
type Daemon struct {
	clock Clock
	logf  func(string, ...any)

	mu       sync.Mutex
	budgets  Budgets
	tenants  map[string]*tenant
	jobs     map[string]*job
	order    []string // job IDs in submission order
	seq      int
	draining bool
	conns    map[net.Conn]struct{}

	// sink carries daemon-global counters (bad requests, reloads);
	// per-tenant lifecycle counters live on each tenant's sink.
	sink *obs.Sink

	// jobsWG counts jobs admitted but not yet terminal; Drain waits on it.
	jobsWG sync.WaitGroup
}

// New returns a daemon ready to Submit into or serve.
func New(cfg Config) *Daemon {
	cfg.Budgets.fill()
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Daemon{
		clock:   cfg.Clock,
		logf:    cfg.Logf,
		budgets: cfg.Budgets,
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*job),
		conns:   make(map[net.Conn]struct{}),
		sink:    obs.New(obs.Options{}),
	}
}

// Submit validates, admits, and starts one job, returning its initial
// status. Rejections are typed: *AdmissionError (over budget, duplicate)
// or ErrDraining.
func (d *Daemon) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		d.sink.CounterInc(obs.CtrDaemonBadRequests)
		return JobStatus{}, &AdmissionError{Code: CodeBadRequest, Reason: err.Error()}
	}
	// Replay jobs with ranks left unset take the trace's rank count —
	// resolved before admission so the budget charge reflects the worlds
	// that will actually be built.
	deriveRanks := spec.Workload == "replay" && spec.Ranks == 0
	spec.Normalize()
	if deriveRanks {
		app, ok := tracegen.ByName(spec.App)
		if !ok {
			d.sink.CounterInc(obs.CtrDaemonBadRequests)
			return JobStatus{}, &AdmissionError{Code: CodeBadRequest,
				Reason: fmt.Sprintf("unknown application %q", spec.App)}
		}
		n := app.Generate(tracegen.Config{Scale: spec.Scale}).NumRanks()
		if n < 1 || n > MaxRanks {
			d.sink.CounterInc(obs.CtrDaemonBadRequests)
			return JobStatus{}, &AdmissionError{Code: CodeBadRequest,
				Reason: fmt.Sprintf("trace %s at scale %d needs %d ranks (limit %d)", spec.App, spec.Scale, n, MaxRanks)}
		}
		spec.Ranks = n
	}
	fp, threads := specFootprint(&spec), specThreads(&spec)

	d.mu.Lock()
	// The submission itself is a tenant-visible event even when rejected.
	if t := d.tenants[spec.Tenant]; t != nil {
		t.sink.CounterInc(obs.CtrDaemonSubmitted)
	} else {
		d.sink.CounterInc(obs.CtrDaemonSubmitted)
	}
	if d.draining {
		d.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if spec.ID == "" {
		d.seq++
		spec.ID = fmt.Sprintf("job-%d", d.seq)
	}
	if _, dup := d.jobs[spec.ID]; dup {
		d.mu.Unlock()
		return JobStatus{}, &AdmissionError{Code: CodeDuplicate, Reason: fmt.Sprintf("job id %q already exists", spec.ID)}
	}
	t, err := d.admit(&spec, fp, threads)
	if err != nil {
		if t != nil {
			t.sink.CounterInc(obs.CtrDaemonRejected)
		} else {
			d.sink.CounterInc(obs.CtrDaemonRejected)
		}
		d.mu.Unlock()
		return JobStatus{}, err
	}
	t.sink.CounterInc(obs.CtrDaemonAdmitted)
	j := &job{spec: spec, tenant: t, fp: fp, threads: threads,
		state: "running", done: make(chan struct{})}
	d.jobs[spec.ID] = j
	d.order = append(d.order, spec.ID)
	d.jobsWG.Add(1)
	st := j.status()
	d.mu.Unlock()

	d.logf("admitted %s for tenant %s (%s/%s/%s, %d ranks, %d threads, %d bytes)",
		spec.ID, spec.Tenant, spec.Workload, spec.Engine, spec.Transport, spec.Ranks, threads, fp)
	go d.runJob(j)
	return st, nil
}

// Status returns one job's current state.
func (d *Daemon) Status(id string) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.jobs[id]
	if j == nil {
		return JobStatus{}, &AdmissionError{Code: CodeUnknownJob, Reason: fmt.Sprintf("no job %q", id)}
	}
	return j.status(), nil
}

// Cancel closes a running job's worlds, unblocking its workload with
// mpi.ErrClosed; the job settles as canceled. Canceling a terminal job is
// a no-op returning its final status.
func (d *Daemon) Cancel(id string) (JobStatus, error) {
	d.mu.Lock()
	j := d.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return JobStatus{}, &AdmissionError{Code: CodeUnknownJob, Reason: fmt.Sprintf("no job %q", id)}
	}
	if j.state == "running" || j.state == "pending" {
		j.canceled = true
	}
	worldsToClose := j.worlds
	st := j.status()
	d.mu.Unlock()
	closeWorlds(worldsToClose)
	return st, nil
}

// WaitJob blocks until the job reaches a terminal state.
func (d *Daemon) WaitJob(id string) (JobStatus, error) {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return JobStatus{}, &AdmissionError{Code: CodeUnknownJob, Reason: fmt.Sprintf("no job %q", id)}
	}
	<-j.done
	return d.Status(id)
}

// List returns every job's status in submission order.
func (d *Daemon) List() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.jobs[id].status())
	}
	return out
}

// Reload hot-swaps the admission policy (SIGHUP in cmd/matchd). Running
// jobs keep their original charges; only future admissions and ring
// pacing see the new budgets.
func (d *Daemon) Reload(b Budgets) {
	b.fill()
	d.mu.Lock()
	d.budgets = b
	d.mu.Unlock()
	d.sink.CounterInc(obs.CtrDaemonReloads)
	d.logf("reloaded budgets: %d tenants max, %d threads, %d bytes, %d jobs, %d posted, drain %v",
		b.MaxTenants, b.TenantThreads, b.TenantBytes, b.TenantJobs, b.MaxPostedPerComm, b.DrainTimeout)
}

// Budgets returns the active policy.
func (d *Daemon) Budgets() Budgets {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.budgets
}

// Draining reports whether Drain has begun.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Drain stops admissions and waits for running jobs to flush. Jobs still
// running at the budgets' DrainTimeout are force-canceled (their worlds
// close, every blocked Wait returns mpi.ErrClosed), and Drain then waits
// for them to settle — so it always terminates, and reports how many jobs
// needed force. Idempotent: later calls just wait again.
func (d *Daemon) Drain() (forced int, err error) {
	d.mu.Lock()
	d.draining = true
	timeout := d.budgets.DrainTimeout
	d.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		d.jobsWG.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return 0, nil
	case <-d.clock.After(timeout):
	}

	// Deadline passed: force-cancel whatever still runs.
	d.mu.Lock()
	var stuck []string
	var closers []func()
	for id, j := range d.jobs {
		if j.state == "running" {
			j.canceled = true
			stuck = append(stuck, id)
			w := j.worlds
			closers = append(closers, func() { closeWorlds(w) })
		}
	}
	d.mu.Unlock()
	sort.Strings(stuck)
	for _, c := range closers {
		c()
	}
	if len(stuck) > 0 {
		d.logf("drain deadline %v passed; force-canceled %v", timeout, stuck)
	}
	<-settled
	return len(stuck), nil
}

// ServeControl serves the JSON-lines control protocol on ln until the
// listener closes. Each connection gets its own goroutine; CloseConns
// tears live connections down for shutdown.
func (d *Daemon) ServeControl(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		d.mu.Lock()
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		go d.serveConn(conn)
	}
}

// CloseConns closes every live control connection.
func (d *Daemon) CloseConns() {
	d.mu.Lock()
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (d *Daemon) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp := d.handle(line)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle dispatches one decoded request line to a response.
func (d *Daemon) handle(line []byte) *Response {
	req, err := DecodeRequest(line)
	if err != nil {
		d.sink.CounterInc(obs.CtrDaemonBadRequests)
		return &Response{Code: CodeBadRequest, Error: err.Error()}
	}
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpList:
		return &Response{OK: true, Jobs: d.List()}
	case OpSubmit:
		st, err := d.Submit(*req.Job)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Job: &st}
	case OpStatus:
		st, err := d.Status(req.ID)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Job: &st}
	case OpCancel:
		st, err := d.Cancel(req.ID)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Job: &st}
	}
	return &Response{Code: CodeBadRequest, Error: "unhandled op"}
}

func errResponse(err error) *Response {
	var adm *AdmissionError
	if errors.As(err, &adm) {
		return &Response{Code: adm.Code, Error: adm.Reason}
	}
	if errors.Is(err, ErrDraining) {
		return &Response{Code: CodeDraining, Error: err.Error()}
	}
	return &Response{Code: CodeInternal, Error: err.Error()}
}
