package daemon

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/dpa"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma/netfabric"
	"repro/internal/replay"
	"repro/internal/tracegen"
)

// job is one hosted run: its admitted charges, the worlds carrying it, and
// its result. State transitions are guarded by the owning daemon's mutex;
// done closes when the job reaches a terminal state.
type job struct {
	spec    JobSpec
	tenant  *tenant
	fp      int
	threads int

	state    string // pending | running | done | failed | canceled
	canceled bool
	worlds   []*mpi.World
	done     chan struct{}

	messages   int
	msgPerSec  float64
	matched    uint64
	unexpected uint64
	err        error
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID: j.spec.ID, Tenant: j.spec.Tenant, State: j.state,
		Workload: j.spec.Workload, Engine: j.spec.Engine, Transport: j.spec.Transport,
		Ranks: j.spec.Ranks, FootprintBytes: j.fp, Threads: j.threads,
		Messages: j.messages, MsgPerSec: j.msgPerSec,
		Matched: j.matched, Unexpected: j.unexpected,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

var engineKinds = map[string]mpi.EngineKind{
	"host": mpi.EngineHost, "offload": mpi.EngineOffload, "raw": mpi.EngineRaw,
}

// worldOptions maps a normalized spec onto mpi world options.
func worldOptions(spec *JobSpec) mpi.Options {
	matcher := bench.PaperMatcherConfig()
	matcher.Bins = spec.Bins
	matcher.MaxReceives = spec.MaxReceives
	matcher.InFlightBlocks = spec.InFlight
	return mpi.Options{
		Engine:     engineKinds[spec.Engine],
		Matcher:    matcher,
		DPA:        dpa.Config{Threads: spec.Threads},
		RecvDepth:  max(2*spec.K, 64),
		EagerLimit: 1024,
	}
}

// buildWorlds materializes the spec's world(s) inside the daemon process:
// one in-process world, or — for net transports — one world per rank, all
// hosted here over a loopback coordinator (the same pattern the transport
// tests use; netfabric.New blocks on the rendezvous barrier, so the ranks
// connect concurrently). The cleanup function removes any shm directory.
func buildWorlds(spec *JobSpec) ([]*mpi.World, func(), error) {
	opts := worldOptions(spec)
	noop := func() {}
	if spec.Transport == "inproc" {
		w, err := mpi.NewWorld(spec.Ranks, opts)
		if err != nil {
			return nil, noop, err
		}
		return []*mpi.World{w}, noop, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, noop, err
	}
	go netfabric.ServeCoordinator(ln, spec.Ranks)

	shmDir := ""
	cleanup := noop
	if spec.Transport == "shm" || spec.Transport == "hybrid" {
		shmDir, err = os.MkdirTemp("", "matchd-shm-")
		if err != nil {
			ln.Close()
			return nil, noop, err
		}
		cleanup = func() { os.RemoveAll(shmDir) }
	}

	worlds := make([]*mpi.World, spec.Ranks)
	errs := make([]error, spec.Ranks)
	var wg sync.WaitGroup
	for k := 0; k < spec.Ranks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cfg := netfabric.Config{
				Network: spec.Transport, Rank: k, Ranks: spec.Ranks,
				Coord: ln.Addr().String(), ShmDir: shmDir,
			}
			if spec.Transport == "hybrid" {
				// Two simulated hosts exercise both the shm and the tcp
				// paths of the locality router within one daemon process.
				cfg.Host = fmt.Sprintf("%s-h%d", spec.ID, k%2)
			}
			tr, err := netfabric.New(cfg)
			if err != nil {
				errs[k] = err
				return
			}
			worlds[k], errs[k] = mpi.NewNetWorld(tr, opts)
		}(k)
	}
	wg.Wait()
	ln.Close()
	for _, err := range errs {
		if err != nil {
			for _, w := range worlds {
				if w != nil {
					w.Close()
				}
			}
			cleanup()
			return nil, noop, err
		}
	}
	return worlds, cleanup, nil
}

// closeWorlds tears a job's worlds down (idempotent via mpi.ErrClosed).
func closeWorlds(worlds []*mpi.World) {
	var wg sync.WaitGroup
	for _, w := range worlds {
		if w == nil {
			continue
		}
		wg.Add(1)
		go func(w *mpi.World) {
			defer wg.Done()
			w.Close()
		}(w)
	}
	wg.Wait()
}

// run executes the job to a terminal state. It owns the worlds' lifetime;
// a concurrent Cancel closes them out from under the workload, which then
// surfaces mpi.ErrClosed and is recorded as canceled rather than failed.
func (d *Daemon) runJob(j *job) {
	worlds, cleanup, err := buildWorlds(&j.spec)
	defer cleanup()
	if err != nil {
		d.finishJob(j, err)
		return
	}

	d.mu.Lock()
	if j.canceled {
		d.mu.Unlock()
		closeWorlds(worlds)
		d.finishJob(j, mpi.ErrClosed)
		return
	}
	j.worlds = worlds
	d.mu.Unlock()

	switch j.spec.Workload {
	case "replay":
		err = d.runReplay(j, worlds)
	default:
		err = d.runRing(j, worlds)
	}
	closeWorlds(worlds)
	d.finishJob(j, err)
}

// finishJob moves j to its terminal state, merges its observability into
// the tenant sink, releases the admission charges, and closes done.
func (d *Daemon) finishJob(j *job, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case j.canceled:
		j.state = "canceled"
		j.err = nil
		j.tenant.sink.CounterInc(obs.CtrDaemonCanceled)
	case err != nil:
		j.state = "failed"
		j.err = err
		j.tenant.sink.CounterInc(obs.CtrDaemonFailed)
	default:
		j.state = "done"
		j.tenant.sink.CounterInc(obs.CtrDaemonCompleted)
	}
	d.release(j.tenant, j.fp, j.threads)
	j.worlds = nil
	close(j.done)
	d.jobsWG.Done()
}

// mergeSinks folds a world's per-rank counters into the tenant's sink, so
// tenant metrics survive the world's teardown with bounded memory.
func mergeSinks(t *tenant, sinks []obs.Named) (matched, unexpected uint64) {
	for _, nd := range sinks {
		if nd.Sink == nil {
			continue
		}
		for c := obs.Counter(0); c < obs.NumCounters; c++ {
			if v := nd.Sink.Counters.Load(c); v != 0 {
				t.sink.CounterAdd(c, v)
			}
		}
		matched += nd.Sink.Counters.Load(obs.CtrMatched)
		unexpected += nd.Sink.Counters.Load(obs.CtrUnexpected)
	}
	return matched, unexpected
}

// runReplay replays the spec's synthetic trace over the job's worlds. The
// trace is regenerated per world (the generators are deterministic), and
// every world replays the ranks it hosts concurrently.
func (d *Daemon) runReplay(j *job, worlds []*mpi.World) error {
	app, ok := tracegen.ByName(j.spec.App)
	if !ok {
		return fmt.Errorf("unknown application %q", j.spec.App)
	}
	tr := app.Generate(tracegen.Config{Scale: j.spec.Scale})
	if n := tr.NumRanks(); n != worlds[0].Size() {
		return fmt.Errorf("trace %s has %d ranks but the job was admitted with %d (set ranks=%d or 0)",
			j.spec.App, n, worlds[0].Size(), n)
	}
	cfg := replay.Config{Engine: engineKinds[j.spec.Engine], Options: worldOptions(&j.spec)}

	start := time.Now()
	results := make([]*replay.Result, len(worlds))
	errs := make([]error, len(worlds))
	var wg sync.WaitGroup
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *mpi.World) {
			defer wg.Done()
			results[i], errs[i] = replay.RunWorld(tr, cfg, w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	d.mu.Lock()
	defer d.mu.Unlock()
	for _, res := range results {
		m, u := mergeSinks(j.tenant, res.Sinks)
		j.matched += m
		j.unexpected += u
		j.messages += res.Sends
	}
	if sec := elapsed.Seconds(); sec > 0 {
		j.msgPerSec = float64(j.messages) / sec
	}
	return nil
}

// runRing drives the ring workload over the job's worlds with the posted
// depth bounded by the daemon's backpressure policy.
func (d *Daemon) runRing(j *job, worlds []*mpi.World) error {
	d.mu.Lock()
	postCap := d.budgets.MaxPostedPerComm
	sink := j.tenant.sink
	d.mu.Unlock()

	res, err := runPacedRing(worlds, &j.spec, postCap, sink)
	if err != nil {
		return err
	}
	// Quiesce before reading counters: Close retires the engines' in-flight
	// blocks, so the matched totals below have settled (closeWorlds is
	// idempotent — runJob's later call is a no-op).
	closeWorlds(worlds)
	d.mu.Lock()
	defer d.mu.Unlock()
	j.messages = res.messages
	j.msgPerSec = res.msgPerSec
	for _, w := range worlds {
		m, u := mergeSinks(j.tenant, w.ObsSinks())
		j.matched += m
		j.unexpected += u
	}
	return nil
}

// ringStats is one paced ring run's outcome.
type ringStats struct {
	messages  int
	msgPerSec float64
}

// pacedTokenBase keeps window-release tokens clear of the data tags
// [0, MaxK).
const pacedTokenBase = 1 << 20

// runPacedRing is the daemon's ring runner: the bench ring workload with
// the per-sequence receive burst split into windows of at most postCap
// receives. A tenant asking for K wider than its posted-receive bound
// still completes — each extra window is one backpressure wait, charged to
// that tenant's daemon_backpressure_waits and throttling nobody else,
// because the pacing happens entirely inside the tenant's own worlds.
func runPacedRing(worlds []*mpi.World, spec *JobSpec, postCap int, sink *obs.Sink) (*ringStats, error) {
	if postCap < 1 {
		postCap = 1
	}
	n := worlds[0].Size()
	var procs []*mpi.Proc
	for _, w := range worlds {
		procs = append(procs, w.LocalProcs()...)
	}

	start := time.Now()
	errCh := make(chan error, len(procs))
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			errCh <- pacedRingRank(p, spec, postCap, sink)
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	res := &ringStats{messages: n * spec.K * spec.Reps}
	if sec := elapsed.Seconds(); sec > 0 {
		res.msgPerSec = float64(res.messages) / sec
	}
	return res, nil
}

// pacedRingRank runs one rank of the paced ring. Per repetition the K
// receives are posted window by window; the predecessor's sends for a
// window are released only once its receives are posted (the ready token),
// so no data message ever lands unexpected and the posted depth never
// exceeds postCap plus the token slot.
func pacedRingRank(p *mpi.Proc, spec *JobSpec, postCap int, sink *obs.Sink) error {
	c := p.World()
	rank, n := c.Rank(), c.Size()
	next, prev := (rank+1)%n, (rank+n-1)%n
	payload := make([]byte, spec.PayloadBytes)
	for i := range payload {
		payload[i] = byte(rank)
	}
	bufs := make([][]byte, spec.K)
	for i := range bufs {
		bufs[i] = make([]byte, spec.PayloadBytes)
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	var token [1]byte
	reqs := make([]*mpi.Request, 0, 2*postCap)
	for rep := 0; rep < spec.Reps; rep++ {
		for base, win := 0, 0; base < spec.K; base, win = base+postCap, win+1 {
			m := min(postCap, spec.K-base)
			reqs = reqs[:0]
			// The token receive is posted before the data receives: on the
			// matching engines order is irrelevant, but the raw engine
			// completes posts in FIFO order ignoring tags, and the token is
			// the one arrival every rank gets unconditionally — posted first
			// it unblocks ready.Wait instead of consuming a data slot and
			// deadlocking the ring.
			ready, err := c.Irecv(next, pacedTokenBase+win, token[:])
			if err != nil {
				return err
			}
			for i := 0; i < m; i++ {
				req, err := c.Irecv(prev, base+i, bufs[base+i])
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			if err := c.Send(prev, pacedTokenBase+win, nil); err != nil {
				return err
			}
			if win > 0 {
				// The sequence did not fit the posted-receive bound: this
				// window exists only because of backpressure.
				sink.CounterInc(obs.CtrDaemonBackpressure)
			}
			if _, err := ready.Wait(); err != nil {
				return err
			}
			for i := 0; i < m; i++ {
				req, err := c.Isend(next, base+i, payload)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			if err := mpi.Waitall(reqs...); err != nil {
				return err
			}
			// The raw engine pairs arrivals with posts by FIFO order, not
			// tag, so buffer contents are not attributable — verification is
			// a matching-engine check.
			if spec.Engine != "raw" {
				for i := 0; i < m; i++ {
					for _, b := range bufs[base+i] {
						if b != byte(prev) {
							return fmt.Errorf("rank %d rep %d msg %d: payload byte %d, want %d",
								rank, rep, base+i, b, prev)
						}
					}
				}
			}
		}
	}
	return c.Barrier()
}
