package daemon

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dpa"
)

// FuzzDecodeRequest pins the control decoder's contract against hostile
// input: any byte string either decodes to a fully validated request or
// returns an error — never a panic — and every accepted submit spec obeys
// the published bounds, so nothing downstream (admission math, world
// construction) sees unvalidated numbers.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"list"}`,
		`{"op":"status","id":"job-1"}`,
		`{"op":"cancel","id":"job-1"}`,
		`{"op":"submit","job":{"tenant":"alpha"}}`,
		`{"op":"submit","job":{"tenant":"alpha","engine":"offload","transport":"shm","ranks":4,"k":8,"reps":2,"inflight":8}}`,
		`{"op":"submit","job":{"tenant":"alpha","workload":"replay","app":"AMG","scale":5}}`,
		// Truncated JSON.
		`{"op":"submit","job":{"tenant":"al`,
		`{"op":`,
		``,
		// Trailing garbage after the request object.
		`{"op":"ping"} {"op":"ping"}`,
		`{"op":"ping"}]`,
		// Hostile budgets: negative, oversized, overflowing.
		`{"op":"submit","job":{"tenant":"a","ranks":-1}}`,
		`{"op":"submit","job":{"tenant":"a","ranks":1000000}}`,
		`{"op":"submit","job":{"tenant":"a","threads":99999}}`,
		`{"op":"submit","job":{"tenant":"a","bins":3}}`,
		`{"op":"submit","job":{"tenant":"a","max_receives":1099511627776}}`,
		`{"op":"submit","job":{"tenant":"a","k":-5,"reps":-5}}`,
		// Oversize and control-character names.
		`{"op":"submit","job":{"tenant":"` + strings.Repeat("x", 300) + `"}}`,
		"{\"op\":\"submit\",\"job\":{\"tenant\":\"evil\u0000name\"}}",
		`{"op":"status","id":"` + strings.Repeat("y", 200) + `"}`,
		// Wrong shapes.
		`{"op":"submit"}`,
		`{"op":"reboot"}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"op":"submit","job":{"tenant":"a","engine":"gpu"}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line)
		if err != nil {
			if req != nil {
				t.Fatalf("error %v with non-nil request", err)
			}
			return
		}
		if !validOps[req.Op] {
			t.Fatalf("accepted unknown op %q", req.Op)
		}
		switch req.Op {
		case OpSubmit:
			s := req.Job
			if s == nil {
				t.Fatalf("accepted submit without a job")
			}
			// Every accepted spec must already satisfy its own bounds...
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted spec fails its own Validate: %v", err)
			}
			// ...and normalizing must land inside them, not merely at zero.
			s.Normalize()
			switch {
			case s.Ranks < 1 || s.Ranks > MaxRanks:
				t.Fatalf("normalized ranks %d out of bounds", s.Ranks)
			case s.K < 1 || s.K > MaxK:
				t.Fatalf("normalized k %d out of bounds", s.K)
			case s.Reps < 1 || s.Reps > MaxReps:
				t.Fatalf("normalized reps %d out of bounds", s.Reps)
			case s.Threads < 1 || s.Threads > dpa.MaxThreads:
				t.Fatalf("normalized threads %d out of bounds", s.Threads)
			case s.InFlight < 1 || s.InFlight > core.MaxInFlightBlocks:
				t.Fatalf("normalized inflight %d out of bounds", s.InFlight)
			case len(s.Tenant) > MaxNameLen || len(s.ID) > MaxNameLen:
				t.Fatalf("normalized names exceed MaxNameLen")
			}
			// The admission charge must be computable without overflow
			// (bounded inputs ⇒ bounded product).
			if fp := specFootprint(s); fp < 0 {
				t.Fatalf("footprint overflowed: %d", fp)
			}
			if th := specThreads(s); th < 0 || th > MaxRanks*dpa.MaxThreads {
				t.Fatalf("thread charge %d out of bounds", th)
			}
		case OpStatus, OpCancel:
			if req.ID == "" || len(req.ID) > MaxNameLen {
				t.Fatalf("accepted bad id %q", req.ID)
			}
		}
		// An accepted request must survive a marshal round-trip (the
		// server echoes specs back through JobStatus JSON).
		if _, err := json.Marshal(req); err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
	})
}

// TestDecodeRequestDuplicateJobIDs pins the duplicate-ID path end to end:
// the decoder accepts both lines (IDs are daemon state, not syntax), and
// the daemon answers the second submit with the typed duplicate code.
func TestDecodeRequestDuplicateJobIDs(t *testing.T) {
	line := []byte(`{"op":"submit","job":{"id":"dup","tenant":"alpha","k":2,"reps":1}}`)
	if _, err := DecodeRequest(line); err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	d := New(Config{Clock: newFakeClock()})
	resp := d.handle(line)
	if !resp.OK {
		t.Fatalf("first submit rejected: %s %s", resp.Code, resp.Error)
	}
	resp = d.handle(line)
	if resp.OK || resp.Code != CodeDuplicate {
		t.Fatalf("duplicate submit: ok=%v code=%s, want %s", resp.OK, resp.Code, CodeDuplicate)
	}
	waitAllTerminal(t, d)
}
