package daemon

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDaemonSoakChurn runs the daemon for ~60 seconds of tenant churn — a
// pool of short-lived tenants joining and leaving with occasional cancels
// while one steady tenant streams jobs back-to-back — then drains and pins
// the quiesce invariants: every job terminal, none failed, every tenant's
// counter ledger balanced (admitted = completed + failed + canceled), all
// budget charges returned, and the goroutine census back at its pre-daemon
// baseline. Gated behind -short because it is wall-clock bound by design.
func TestDaemonSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is wall-clock bound; skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	d := New(Config{Budgets: Budgets{TenantJobs: 2}, Logf: func(string, ...any) {}})
	const (
		soakFor      = 60 * time.Second
		churnWorkers = 4
	)
	churnTenants := []string{"ten-a", "ten-b", "ten-c", "ten-d", "ten-e", "ten-f"}
	engines := []string{"host", "offload", "raw"}

	var submitted, rejected, canceled atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// submitOne shapes, submits, and settles one churn job. Admission
	// rejections are an expected soak outcome (the job cap is deliberately
	// tight); anything else unexpected is fatal via the returned error.
	submitOne := func(worker, iter int) error {
		spec := JobSpec{
			Tenant: churnTenants[(worker+iter)%len(churnTenants)],
			Engine: engines[iter%len(engines)],
			Ranks:  2 + iter%2*2, // 2 or 4
			K:      4 << (iter % 3),
			Reps:   2 + iter%3,
		}
		// Every 7th job crosses a socket transport to keep the teardown
		// paths for out-of-process worlds in the churn.
		switch {
		case iter%21 == 7:
			spec.Transport = "tcp"
		case iter%21 == 14:
			spec.Transport = "shm"
		}
		cancelIt := iter%5 == 4
		if cancelIt {
			spec.Reps = MaxReps // long enough that the cancel races a live run
		}
		st, err := d.Submit(spec)
		if err != nil {
			if _, ok := err.(*AdmissionError); ok {
				rejected.Add(1)
				return nil
			}
			return fmt.Errorf("submit: %w", err)
		}
		submitted.Add(1)
		if cancelIt {
			time.Sleep(time.Millisecond)
			if _, err := d.Cancel(st.ID); err != nil {
				return fmt.Errorf("cancel %s: %w", st.ID, err)
			}
			canceled.Add(1)
		}
		fin, err := d.WaitJob(st.ID)
		if err != nil {
			return fmt.Errorf("wait %s: %w", st.ID, err)
		}
		if fin.State == "failed" {
			return fmt.Errorf("job %s (%s/%s/%s) failed: %s",
				st.ID, spec.Tenant, spec.Engine, spec.Transport, fin.Error)
		}
		return nil
	}

	errCh := make(chan error, churnWorkers+1)
	for w := 0; w < churnWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := submitOne(w, iter); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// The steady tenant streams identical jobs back-to-back for the whole
	// window — the long-lived service workload the churn swirls around.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := d.Submit(JobSpec{Tenant: "steady", Engine: "offload", Ranks: 2, K: 8, Reps: 3})
			if err != nil {
				if _, ok := err.(*AdmissionError); ok {
					rejected.Add(1)
					continue
				}
				errCh <- fmt.Errorf("steady submit: %w", err)
				return
			}
			submitted.Add(1)
			if fin, werr := d.WaitJob(st.ID); werr != nil || fin.State != "done" {
				errCh <- fmt.Errorf("steady job %s: state %s, err %v", st.ID, fin.State, werr)
				return
			}
		}
	}()

	time.Sleep(soakFor)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	t.Logf("soak: %d submitted, %d rejected, %d canceled over %v",
		submitted.Load(), rejected.Load(), canceled.Load(), soakFor)
	if submitted.Load() < 100 {
		t.Errorf("soak churn only completed %d jobs in %v; expected real throughput", submitted.Load(), soakFor)
	}

	if forced, err := d.Drain(); err != nil || forced != 0 {
		t.Fatalf("Drain after quiesce = (%d, %v), want (0, nil)", forced, err)
	}

	// Quiesce invariants: every job terminal and none failed...
	var doneN, canceledN int
	for _, st := range d.List() {
		switch st.State {
		case "done":
			doneN++
		case "canceled":
			canceledN++
		default:
			t.Errorf("job %s not terminal at quiesce: %s (%s)", st.ID, st.State, st.Error)
		}
	}
	if doneN+canceledN != int(submitted.Load()) {
		t.Errorf("terminal jobs %d+%d != %d submitted", doneN, canceledN, submitted.Load())
	}
	// ...every tenant's counter ledger balanced with zero retained charges...
	d.mu.Lock()
	var admitted, completed, failed, canceledCtr uint64
	for name, ten := range d.tenants {
		a := ten.sink.Counters.Load(obs.CtrDaemonAdmitted)
		c := ten.sink.Counters.Load(obs.CtrDaemonCompleted)
		f := ten.sink.Counters.Load(obs.CtrDaemonFailed)
		x := ten.sink.Counters.Load(obs.CtrDaemonCanceled)
		if a != c+f+x {
			t.Errorf("tenant %s ledger: admitted %d != completed %d + failed %d + canceled %d", name, a, c, f, x)
		}
		if f != 0 {
			t.Errorf("tenant %s recorded %d failed jobs", name, f)
		}
		if ten.active != 0 || ten.threadsUsed != 0 || ten.bytesUsed != 0 {
			t.Errorf("tenant %s retains charges at quiesce: active=%d threads=%d bytes=%d",
				name, ten.active, ten.threadsUsed, ten.bytesUsed)
		}
		admitted += a
		completed += c
		failed += f
		canceledCtr += x
	}
	d.mu.Unlock()
	if admitted != uint64(submitted.Load()) {
		t.Errorf("admitted counters sum to %d, %d jobs were accepted", admitted, submitted.Load())
	}
	if completed+failed+canceledCtr != admitted {
		t.Errorf("global ledger: %d+%d+%d != %d admitted", completed, failed, canceledCtr, admitted)
	}

	// ...and no goroutine survived the churn.
	deadline := time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<21)
			t.Fatalf("goroutines: %d before soak, %d at quiesce\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
