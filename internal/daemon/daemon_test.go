package daemon

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// startDaemon brings up an in-process matchd — daemon core plus control
// listener — and returns it with its control address. Cleanup closes the
// listener and every live connection.
func startDaemon(t *testing.T, budgets Budgets) (*Daemon, string) {
	t.Helper()
	d := New(Config{Budgets: budgets, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("control listen: %v", err)
	}
	go d.ServeControl(ln)
	t.Cleanup(func() {
		ln.Close()
		d.CloseConns()
	})
	return d, ln.Addr().String()
}

// goldenRing runs one spec through the single-job path — a plain world and
// the bench ring runner, no daemon — and returns its deterministic
// outcome: the global message count and, for the offload engine, the
// aggregate matched-pairing total (every message pairs exactly once at its
// receiver, so the total is schedule-independent).
func goldenRing(t *testing.T, spec JobSpec) (messages int, matched uint64) {
	t.Helper()
	spec.Normalize()
	w, err := mpi.NewWorld(spec.Ranks, worldOptions(&spec))
	if err != nil {
		t.Fatalf("golden world: %v", err)
	}
	res, err := bench.RunMsgRateRing(w, bench.RingConfig{
		Label: "golden", K: spec.K, Reps: spec.Reps, PayloadBytes: spec.PayloadBytes,
	})
	if err != nil {
		t.Fatalf("golden ring: %v", err)
	}
	for _, nd := range res.Sinks {
		matched += nd.Sink.Counters.Load(obs.CtrMatched)
	}
	return res.Messages, matched
}

// TestDaemonMultiTenantIntegration hosts 8 concurrent tenant jobs — every
// engine, in-flight depths K ∈ {1,4,8}, and all four transports — through
// the real control protocol, then checks each tenant's matched results
// against the golden single-job path and the daemon's admission
// bookkeeping against its own /tenants view.
func TestDaemonMultiTenantIntegration(t *testing.T) {
	d, addr := startDaemon(t, Budgets{TenantThreads: 256, TenantBytes: 256 << 20})

	specs := []JobSpec{
		{Tenant: "t0", Engine: "host", Transport: "inproc", Ranks: 4, K: 8, Reps: 3},
		{Tenant: "t1", Engine: "offload", Transport: "inproc", Ranks: 2, K: 8, Reps: 3, InFlight: 1},
		{Tenant: "t2", Engine: "offload", Transport: "inproc", Ranks: 2, K: 8, Reps: 3, InFlight: 4},
		{Tenant: "t3", Engine: "offload", Transport: "inproc", Ranks: 2, K: 8, Reps: 3, InFlight: 8},
		{Tenant: "t4", Engine: "raw", Transport: "inproc", Ranks: 4, K: 8, Reps: 3},
		{Tenant: "t5", Engine: "host", Transport: "tcp", Ranks: 2, K: 4, Reps: 2},
		{Tenant: "t6", Engine: "offload", Transport: "shm", Ranks: 2, K: 4, Reps: 2, InFlight: 4},
		{Tenant: "t7", Engine: "host", Transport: "hybrid", Ranks: 2, K: 4, Reps: 2},
	}

	finals := make([]*JobStatus, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			st, err := c.Submit(spec)
			if err != nil {
				errs[i] = fmt.Errorf("submit: %w", err)
				return
			}
			finals[i], errs[i] = c.Wait(st.ID, 2*time.Minute)
		}(i, spec)
	}
	wg.Wait()

	for i, spec := range specs {
		if errs[i] != nil {
			t.Fatalf("%s (%s/%s): %v", spec.Tenant, spec.Engine, spec.Transport, errs[i])
		}
		st := finals[i]
		if st.State != "done" {
			t.Fatalf("%s ended %s: %s", spec.Tenant, st.State, st.Error)
		}
		// Golden equivalence: the daemon-hosted run must move exactly the
		// messages the single-job path moves...
		goldenMsgs, goldenMatched := goldenRing(t, spec)
		if st.Messages != goldenMsgs {
			t.Errorf("%s: daemon moved %d messages, golden single-job path %d",
				spec.Tenant, st.Messages, goldenMsgs)
		}
		// ...and, on the offload engine, pair them the same number of
		// times (matched totals are deterministic: every data message,
		// ready token, and barrier message pairs once at its receiver).
		if spec.Engine == "offload" && st.Matched != goldenMatched {
			t.Errorf("%s: daemon matched %d pairings, golden %d",
				spec.Tenant, st.Matched, goldenMatched)
		}
	}

	// The daemon's own accounting must agree: 8 tenants, all charges
	// returned, every admission completed.
	doc := d.Tenants()
	if len(doc.Tenants) != len(specs) {
		t.Fatalf("daemon reports %d tenants, want %d", len(doc.Tenants), len(specs))
	}
	for _, ti := range doc.Tenants {
		if ti.ActiveJobs != 0 || ti.ThreadsUsed != 0 || ti.BytesUsed != 0 {
			t.Errorf("tenant %s retains charges after completion: %+v", ti.Name, ti)
		}
		for _, j := range ti.Jobs {
			if j.State != "done" {
				t.Errorf("tenant %s job %s ended %s", ti.Name, j.ID, j.State)
			}
		}
	}
}

// TestDaemonMetricsEndToEnd drives a couple of jobs and checks the
// /metrics document carries per-tenant labeled counters and the
// OpenMetrics scaffolding obscheck -metrics validates in CI.
func TestDaemonMetricsEndToEnd(t *testing.T) {
	d, _ := startDaemon(t, Budgets{})
	for _, tenant := range []string{"alpha", "beta"} {
		st, err := d.Submit(JobSpec{Tenant: tenant, Engine: "offload", Ranks: 2, K: 4, Reps: 2})
		if err != nil {
			t.Fatalf("%s: %v", tenant, err)
		}
		if fin, err := d.WaitJob(st.ID); err != nil || fin.State != "done" {
			t.Fatalf("%s job: state %s, err %v", tenant, fin.State, err)
		}
	}
	var sb strings.Builder
	if err := d.WriteMetrics(&sb); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE matchd_daemon_admitted counter",
		`matchd_daemon_admitted_total{tenant="alpha"} 1`,
		`matchd_daemon_admitted_total{tenant="beta"} 1`,
		`matchd_daemon_completed_total{tenant="alpha"} 1`,
		`matchd_matched_total{tenant="alpha"}`,
		"# TYPE matchd_tenants_active gauge",
		"matchd_tenants_active 2",
		"matchd_jobs_running 0",
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\ngot:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("/metrics does not terminate with # EOF")
	}
}

// TestDaemonDrainLeavesNoGoroutines pins the shutdown contract: after a
// busy daemon drains and its listeners close, the process is back to its
// pre-daemon goroutine census — no leaked rank loops, engine workers,
// accept loops, or connection handlers.
func TestDaemonDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	d := New(Config{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("control listen: %v", err)
	}
	go d.ServeControl(ln)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for i := 0; i < 4; i++ {
		spec := JobSpec{Tenant: fmt.Sprintf("t%d", i%2), Engine: []string{"host", "offload"}[i%2],
			Ranks: 2, K: 4, Reps: 2}
		st, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if fin, err := c.Wait(st.ID, time.Minute); err != nil || fin.State != "done" {
			t.Fatalf("job %d: state %s, err %v", i, fin.State, err)
		}
	}
	c.Close()
	if forced, err := d.Drain(); err != nil || forced != 0 {
		t.Fatalf("Drain = (%d, %v), want (0, nil)", forced, err)
	}
	ln.Close()
	d.CloseConns()

	// Give conn handlers and world teardown a moment to unwind, then
	// require the census back at (or below) the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDaemonReplayJob hosts a replay workload end to end (the daemon's
// second workload type, exercised through the public surface).
func TestDaemonReplayJob(t *testing.T) {
	d, _ := startDaemon(t, Budgets{})
	st, err := d.Submit(JobSpec{Tenant: "amg", Workload: "replay", Engine: "offload",
		App: "AMG", Scale: 5, Ranks: 0})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Ranks was left 0: the daemon derives the trace's rank count before
	// admission, so the admitted status already carries it.
	if st.Ranks < 2 {
		t.Fatalf("derived ranks = %d, want the AMG trace's rank count", st.Ranks)
	}
	fin, err := d.WaitJob(st.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if fin.State != "done" {
		t.Fatalf("replay job ended %s: %s", fin.State, fin.Error)
	}
	if fin.Messages == 0 || fin.Matched == 0 {
		t.Errorf("replay job reported no work: %+v", fin)
	}
}
