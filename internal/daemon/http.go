package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// Handler returns the daemon's HTTP observability surface:
//
//	/healthz  — 200 "ok", or 503 "draining" once Drain has begun
//	/metrics  — OpenMetrics text: per-tenant counters and histograms
//	            (label tenant=...), daemon gauges, terminated by # EOF
//	/tenants  — JSON: each tenant's budget usage and its jobs
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.serveHealthz)
	mux.HandleFunc("/metrics", d.serveMetrics)
	mux.HandleFunc("/tenants", d.serveTenants)
	return mux
}

func (d *Daemon) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if d.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (d *Daemon) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.WriteMetrics(w); err != nil {
		d.logf("metrics write: %v", err)
	}
}

// WriteMetrics renders the full OpenMetrics document: one label-less group
// for the daemon's own sink, one group per tenant (tenant sink plus the
// live sinks of its running jobs' worlds, so in-flight histograms are
// visible), daemon gauges, and the # EOF terminator.
func (d *Daemon) WriteMetrics(w io.Writer) error {
	d.mu.Lock()
	names := make([]string, 0, len(d.tenants))
	for name := range d.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	groups := []obs.LabeledSinks{{Sinks: []*obs.Sink{d.sink}}}
	running, jobsTotal := 0, len(d.jobs)
	for _, name := range names {
		t := d.tenants[name]
		sinks := []*obs.Sink{t.sink}
		for _, id := range d.order {
			j := d.jobs[id]
			if j.tenant != t || j.state != "running" {
				continue
			}
			for _, w := range j.worlds {
				for _, nd := range w.ObsSinks() {
					sinks = append(sinks, nd.Sink)
				}
			}
		}
		groups = append(groups, obs.LabeledSinks{
			Labels: []obs.Label{{Name: "tenant", Value: name}},
			Sinks:  sinks,
		})
	}
	for _, j := range d.jobs {
		if j.state == "running" {
			running++
		}
	}
	tenantsActive := len(d.tenants)
	draining := 0.0
	if d.draining {
		draining = 1
	}
	d.mu.Unlock()

	if err := obs.WriteProm(w, "matchd", groups); err != nil {
		return err
	}
	gauges := []struct {
		name  string
		value float64
	}{
		{"matchd_up", 1},
		{"matchd_draining", draining},
		{"matchd_tenants_active", float64(tenantsActive)},
		{"matchd_jobs_running", float64(running)},
		{"matchd_jobs_known", float64(jobsTotal)},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", g.name, g.name, g.value); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// TenantInfo is one tenant's /tenants entry.
type TenantInfo struct {
	Name        string      `json:"name"`
	ActiveJobs  int         `json:"active_jobs"`
	ThreadsUsed int         `json:"threads_used"`
	BytesUsed   int         `json:"bytes_used"`
	Jobs        []JobStatus `json:"jobs"`
}

// TenantsDoc is the /tenants JSON document.
type TenantsDoc struct {
	Draining bool         `json:"draining"`
	Budgets  Budgets      `json:"budgets"`
	Tenants  []TenantInfo `json:"tenants"`
}

// Tenants assembles the /tenants document.
func (d *Daemon) Tenants() TenantsDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	doc := TenantsDoc{Draining: d.draining, Budgets: d.budgets}
	names := make([]string, 0, len(d.tenants))
	for name := range d.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := d.tenants[name]
		info := TenantInfo{Name: name, ActiveJobs: t.active,
			ThreadsUsed: t.threadsUsed, BytesUsed: t.bytesUsed}
		for _, id := range d.order {
			if j := d.jobs[id]; j.tenant == t {
				info.Jobs = append(info.Jobs, j.status())
			}
		}
		doc.Tenants = append(doc.Tenants, info)
	}
	return doc
}

func (d *Daemon) serveTenants(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d.Tenants()); err != nil {
		d.logf("tenants write: %v", err)
	}
}
