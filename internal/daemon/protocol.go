// Package daemon hosts many matching jobs — each its own mpi world over
// the in-process, TCP, shared-memory, or hybrid fabric — inside one
// long-running multi-tenant process (cmd/matchd). Tenants are admitted
// against per-tenant DPA-thread and modeled-memory budgets (§IV-E), their
// posted-receive depth is bounded per communicator (backpressure throttles
// only the offending tenant), and the whole daemon drains gracefully on
// request: stop admitting, let running jobs flush, force-cancel past the
// deadline by closing their worlds (mpi.ErrClosed unblocks every waiter).
//
// Control runs over a JSON-lines protocol (one request, one reply per
// line); observability over HTTP: /metrics (OpenMetrics with per-tenant
// labels), /healthz, and /tenants (JSON). DESIGN.md §15 describes the
// architecture.
package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/dpa"
)

// Wire limits. A control peer is untrusted enough to fuzz: every bound
// here turns a hostile request into a typed error instead of an
// allocation, a panic, or an unbounded world.
const (
	// MaxLineBytes bounds one request line (the scanner drops the
	// connection past it).
	MaxLineBytes = 1 << 20
	// MaxNameLen bounds tenant names and job IDs.
	MaxNameLen = 128
	// MaxRanks bounds one job's world size.
	MaxRanks = 64
	// MaxK and MaxReps bound the ring workload size.
	MaxK    = 1 << 16
	MaxReps = 1 << 20
	// MaxPayloadBytes bounds the ring payload.
	MaxPayloadBytes = 1 << 16
	// MaxBins and MaxReceivesCap bound the matcher tables a job may ask
	// for (hostile budgets are rejected before footprint math can
	// overflow).
	MaxBins        = 1 << 20
	MaxReceivesCap = 1 << 20
	// MaxScale bounds the replay generator scale percentage.
	MaxScale = 100
)

// Request ops.
const (
	OpSubmit = "submit"
	OpStatus = "status"
	OpCancel = "cancel"
	OpList   = "list"
	OpPing   = "ping"
)

// Typed error codes carried in Response.Code.
const (
	CodeBadRequest = "bad-request"
	CodeOverBudget = "over-budget"
	CodeDraining   = "draining"
	CodeUnknownJob = "unknown-job"
	CodeDuplicate  = "duplicate-job"
	CodeInternal   = "internal"
)

// Request is one control-protocol message (one JSON object per line).
type Request struct {
	Op  string   `json:"op"`
	Job *JobSpec `json:"job,omitempty"` // submit
	ID  string   `json:"id,omitempty"`  // status, cancel
}

// JobSpec describes one job to host. Zero fields take defaults
// (Normalize); every bound is validated before admission.
type JobSpec struct {
	// ID names the job; empty asks the daemon to assign one. Tenant
	// scopes the job's budgets and metric labels.
	ID     string `json:"id,omitempty"`
	Tenant string `json:"tenant"`
	// Workload is "ring" (default) or "replay"; Engine host|offload|raw;
	// Transport inproc (default) | tcp | shm | hybrid.
	Workload  string `json:"workload,omitempty"`
	Engine    string `json:"engine,omitempty"`
	Transport string `json:"transport,omitempty"`
	// Ranks is the world size (default 2). Replay jobs take the trace's
	// own rank count; a nonzero mismatch is an error.
	Ranks int `json:"ranks,omitempty"`
	// Ring workload shape (defaults 16 / 10 / 8).
	K            int `json:"k,omitempty"`
	Reps         int `json:"reps,omitempty"`
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// Threads is the per-rank DPA thread ask (offload engine only,
	// default dpa.DefaultThreads); the tenant is charged Ranks × Threads.
	Threads int `json:"threads,omitempty"`
	// Matcher table shape (defaults 256 bins / 1088 receives / K=1).
	Bins        int `json:"bins,omitempty"`
	MaxReceives int `json:"max_receives,omitempty"`
	InFlight    int `json:"inflight,omitempty"`
	// Replay workload: synthetic application name and generation scale.
	App   string `json:"app,omitempty"`
	Scale int    `json:"scale,omitempty"`
}

// Response is one control-protocol reply.
type Response struct {
	OK    bool        `json:"ok"`
	Code  string      `json:"code,omitempty"`
	Error string      `json:"error,omitempty"`
	Job   *JobStatus  `json:"job,omitempty"`
	Jobs  []JobStatus `json:"jobs,omitempty"`
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"` // pending | running | done | failed | canceled
	Workload  string `json:"workload"`
	Engine    string `json:"engine"`
	Transport string `json:"transport"`
	Ranks     int    `json:"ranks"`
	// FootprintBytes and Threads are what admission charged the tenant.
	FootprintBytes int `json:"footprint_bytes"`
	Threads        int `json:"threads"`
	// Result fields, populated in terminal states (and Messages while
	// running).
	Messages   int     `json:"messages,omitempty"`
	MsgPerSec  float64 `json:"msg_per_sec,omitempty"`
	Matched    uint64  `json:"matched,omitempty"`
	Unexpected uint64  `json:"unexpected,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "canceled"
}

var (
	validEngines    = map[string]bool{"host": true, "offload": true, "raw": true}
	validTransports = map[string]bool{"inproc": true, "tcp": true, "shm": true, "hybrid": true}
	validOps        = map[string]bool{OpSubmit: true, OpStatus: true, OpCancel: true, OpList: true, OpPing: true}
)

// DecodeRequest parses and validates one request line. Every failure —
// truncated JSON, trailing garbage, unknown ops, hostile budgets, oversize
// names — is a typed error the server answers with CodeBadRequest; no
// input may panic or allocate beyond the line itself.
func DecodeRequest(line []byte) (*Request, error) {
	if len(line) > MaxLineBytes {
		return nil, fmt.Errorf("request of %d bytes exceeds the %d-byte line limit", len(line), MaxLineBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("malformed request: %v", err)
	}
	// One value per line: trailing non-space bytes are a framing error.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(bytes.TrimSpace(line[dec.InputOffset():])) > 0 {
		return nil, fmt.Errorf("trailing data after request object")
	}
	if !validOps[req.Op] {
		return nil, fmt.Errorf("unknown op %q", truncName(req.Op))
	}
	switch req.Op {
	case OpSubmit:
		if req.Job == nil {
			return nil, fmt.Errorf("submit without a job spec")
		}
		if err := req.Job.Validate(); err != nil {
			return nil, err
		}
	case OpStatus, OpCancel:
		if err := checkName("job id", req.ID, true); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// Validate bounds every field of a submitted spec.
func (s *JobSpec) Validate() error {
	if err := checkName("tenant", s.Tenant, true); err != nil {
		return err
	}
	if err := checkName("job id", s.ID, false); err != nil {
		return err
	}
	if err := checkName("app", s.App, false); err != nil {
		return err
	}
	if s.Workload != "" && s.Workload != "ring" && s.Workload != "replay" {
		return fmt.Errorf("unknown workload %q, want ring or replay", truncName(s.Workload))
	}
	if s.Engine != "" && !validEngines[s.Engine] {
		return fmt.Errorf("unknown engine %q, want host, offload, or raw", truncName(s.Engine))
	}
	if s.Transport != "" && !validTransports[s.Transport] {
		return fmt.Errorf("unknown transport %q, want inproc, tcp, shm, or hybrid", truncName(s.Transport))
	}
	switch {
	case s.Ranks < 0 || s.Ranks > MaxRanks:
		return fmt.Errorf("ranks %d outside [0,%d]", s.Ranks, MaxRanks)
	case s.K < 0 || s.K > MaxK:
		return fmt.Errorf("k %d outside [0,%d]", s.K, MaxK)
	case s.Reps < 0 || s.Reps > MaxReps:
		return fmt.Errorf("reps %d outside [0,%d]", s.Reps, MaxReps)
	case s.PayloadBytes < 0 || s.PayloadBytes > MaxPayloadBytes:
		return fmt.Errorf("payload_bytes %d outside [0,%d]", s.PayloadBytes, MaxPayloadBytes)
	case s.Threads < 0 || s.Threads > dpa.MaxThreads:
		return fmt.Errorf("threads %d outside [0,%d]", s.Threads, dpa.MaxThreads)
	case s.Bins < 0 || s.Bins > MaxBins:
		return fmt.Errorf("bins %d outside [0,%d]", s.Bins, MaxBins)
	case s.Bins > 0 && bits.OnesCount(uint(s.Bins)) != 1:
		return fmt.Errorf("bins %d must be a power of two", s.Bins)
	case s.MaxReceives < 0 || s.MaxReceives > MaxReceivesCap:
		return fmt.Errorf("max_receives %d outside [0,%d]", s.MaxReceives, MaxReceivesCap)
	case s.InFlight < 0 || s.InFlight > core.MaxInFlightBlocks:
		return fmt.Errorf("inflight %d outside [0,%d]", s.InFlight, core.MaxInFlightBlocks)
	case s.Scale < 0 || s.Scale > MaxScale:
		return fmt.Errorf("scale %d outside [0,%d]", s.Scale, MaxScale)
	}
	return nil
}

// Normalize fills defaulted fields in place (after Validate).
func (s *JobSpec) Normalize() {
	if s.Workload == "" {
		s.Workload = "ring"
	}
	if s.Engine == "" {
		s.Engine = "host"
	}
	if s.Transport == "" {
		s.Transport = "inproc"
	}
	if s.Ranks == 0 {
		s.Ranks = 2
	}
	if s.K == 0 {
		s.K = 16
	}
	if s.Reps == 0 {
		s.Reps = 10
	}
	if s.PayloadBytes == 0 {
		s.PayloadBytes = 8
	}
	if s.Threads == 0 {
		s.Threads = dpa.DefaultThreads
	}
	if s.Bins == 0 {
		s.Bins = 256
	}
	if s.MaxReceives == 0 {
		s.MaxReceives = 1024 + 64
	}
	if s.InFlight == 0 {
		s.InFlight = 1
	}
	if s.Workload == "replay" {
		if s.App == "" {
			s.App = "AMG"
		}
		if s.Scale == 0 {
			s.Scale = 5
		}
	}
}

// checkName bounds one identifier: length-capped, no control characters.
func checkName(what, v string, required bool) error {
	if v == "" {
		if required {
			return fmt.Errorf("missing %s", what)
		}
		return nil
	}
	if len(v) > MaxNameLen {
		return fmt.Errorf("%s of %d bytes exceeds the %d-byte limit", what, len(v), MaxNameLen)
	}
	for _, r := range v {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("%s contains control characters", what)
		}
	}
	return nil
}

// truncName bounds an attacker-chosen string echoed into an error.
func truncName(v string) string {
	if len(v) > 64 {
		return v[:64] + "..."
	}
	return v
}
