// Package dpa simulates the Data Path Accelerator of the BlueField-3 DPU
// (§II-C): a pool of lightweight execution units running handlers to
// completion, with fast access to NIC resources and a small on-NIC memory
// hosting bounce buffers and the matching data structures.
//
// Substitution note (see DESIGN.md): the real DPA has 16 cores and 256
// hardware threads programmed through DOCA; what the matching algorithm
// actually depends on is the execution model — N parallel run-to-completion
// handlers triggered by completion-queue entries, polling in the strided
// pattern of §IV-A — and a bounded memory budget. Both are modeled here;
// handler bodies run as goroutines pinned to logical thread IDs.
package dpa

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// BlueField-3 DPA memory hierarchy (§IV-E).
const (
	// L2CacheBytes is the BF3 DPA L2 cache size (1.5 MiB).
	L2CacheBytes = 3 * 512 * 1024
	// L3CacheBytes is the BF3 DPA L3 cache size (3 MiB).
	L3CacheBytes = 3 * 1024 * 1024
	// DefaultThreads matches the paper's prototype (32 DPA threads,
	// "limited by the bookkeeping bitmap size").
	DefaultThreads = 32
	// MaxThreads is the BF3 hardware thread count.
	MaxThreads = 256
)

// ErrOutOfMemory is returned when an arena allocation exceeds capacity; the
// caller is expected to fall back to host (software) handling, as §IV-E
// prescribes when the DPA runs out of resources.
var ErrOutOfMemory = errors.New("dpa: out of NIC memory")

// Arena is a bounded NIC-memory allocator with usage accounting. It backs
// bounce buffers, unexpected-message storage, and table budgeting.
type Arena struct {
	mu       sync.Mutex
	capacity int
	used     int
	peak     int
}

// NewArena returns an arena with the given capacity in bytes.
func NewArena(capacity int) *Arena {
	return &Arena{capacity: capacity}
}

// Allocation is a chunk of NIC memory; call Release when done.
type Allocation struct {
	Bytes []byte
	arena *Arena
	freed bool
}

// Alloc reserves n bytes, or fails with ErrOutOfMemory.
func (a *Arena) Alloc(n int) (*Allocation, error) {
	if n < 0 {
		return nil, fmt.Errorf("dpa: negative allocation %d", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+n > a.capacity {
		return nil, ErrOutOfMemory
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return &Allocation{Bytes: make([]byte, n), arena: a}, nil
}

// Release returns the allocation's bytes to the arena. Releasing twice is
// a no-op.
func (al *Allocation) Release() {
	if al.freed || al.arena == nil {
		return
	}
	al.freed = true
	al.arena.mu.Lock()
	al.arena.used -= len(al.Bytes)
	al.arena.mu.Unlock()
}

// Used returns the bytes currently allocated.
func (a *Arena) Used() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark.
func (a *Arena) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Capacity returns the configured capacity.
func (a *Arena) Capacity() int { return a.capacity }

// Accelerator is the simulated DPA: a fixed pool of execution units that
// run handler activations to completion.
type Accelerator struct {
	threads int
	arena   *Arena

	work chan *blockState
	wg   sync.WaitGroup

	activations atomic.Uint64
	closed      atomic.Bool
}

// blockState is one block's dispatch record: workers steal thread IDs from
// next until the block is exhausted. It is allocated fresh per block (one
// small allocation amortized over the whole block) because a worker may
// still be inspecting it after the final activation finishes — recycling it
// into a pool could leak a stale worker into the next block.
type blockState struct {
	n    int
	fn   func(tid int)
	next atomic.Int32
	wg   *sync.WaitGroup
}

// Config parameterizes the simulated device.
type Config struct {
	// Threads is the number of execution units (default DefaultThreads).
	Threads int
	// MemoryBytes is the NIC memory capacity (default L3CacheBytes).
	MemoryBytes int
}

// New starts an accelerator.
func New(cfg Config) (*Accelerator, error) {
	if cfg.Threads == 0 {
		cfg.Threads = DefaultThreads
	}
	if cfg.Threads < 1 || cfg.Threads > MaxThreads {
		return nil, fmt.Errorf("dpa: Threads must be in [1,%d], got %d", MaxThreads, cfg.Threads)
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = L3CacheBytes
	}
	a := &Accelerator{
		threads: cfg.Threads,
		arena:   NewArena(cfg.MemoryBytes),
		work:    make(chan *blockState, cfg.Threads),
	}
	for i := 0; i < cfg.Threads; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	return a, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *Accelerator {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// worker executes handler activations to completion, one at a time — the
// DPA's run-to-completion discipline. Activations are claimed by stealing
// thread IDs from the block's counter, so a free worker drains as many
// consecutive activations as it can without a scheduler round-trip, while
// an activation that blocks mid-handler leaves the remaining IDs to the
// other workers woken by the block's tickets.
func (a *Accelerator) worker() {
	defer a.wg.Done()
	for bs := range a.work {
		for {
			tid := int(bs.next.Add(1)) - 1
			if tid >= bs.n {
				break
			}
			bs.fn(tid)
			a.activations.Add(1)
			bs.wg.Done()
		}
	}
}

// wgPool recycles the WaitGroups RunBlock hands to its blocks: a WaitGroup
// escapes to the heap through the block state, and without pooling every
// block would allocate one. Reuse is safe because a WaitGroup whose counter
// returned to zero is indistinguishable from a fresh one, and workers never
// touch the WaitGroup after their final Done.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// RunBlock executes fn(0) … fn(n-1) concurrently on the pool and waits for
// all of them — one activation per message of a matching block. n may not
// exceed the thread count.
func (a *Accelerator) RunBlock(n int, fn func(tid int)) {
	if n > a.threads {
		panic(fmt.Sprintf("dpa: RunBlock(%d) exceeds %d threads", n, a.threads))
	}
	wg := wgPool.Get().(*sync.WaitGroup)
	wg.Add(n)
	bs := &blockState{n: n, fn: fn, wg: wg}
	// One ticket per activation wakes at most n workers; any worker that
	// arrives after the IDs run out drops its ticket and moves on.
	for i := 0; i < n; i++ {
		a.work <- bs
	}
	wg.Wait()
	wgPool.Put(wg)
}

// Threads returns the execution-unit count.
func (a *Accelerator) Threads() int { return a.threads }

// Arena returns the device memory arena.
func (a *Accelerator) Arena() *Arena { return a.arena }

// Activations returns the number of handler activations executed.
func (a *Accelerator) Activations() uint64 { return a.activations.Load() }

// Close stops the workers. RunBlock must not be called afterwards.
func (a *Accelerator) Close() {
	if a.closed.CompareAndSwap(false, true) {
		close(a.work)
		a.wg.Wait()
	}
}
