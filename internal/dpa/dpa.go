// Package dpa simulates the Data Path Accelerator of the BlueField-3 DPU
// (§II-C): a pool of lightweight execution units running handlers to
// completion, with fast access to NIC resources and a small on-NIC memory
// hosting bounce buffers and the matching data structures.
//
// Substitution note (see DESIGN.md): the real DPA has 16 cores and 256
// hardware threads programmed through DOCA; what the matching algorithm
// actually depends on is the execution model — N parallel run-to-completion
// handlers triggered by completion-queue entries, polling in the strided
// pattern of §IV-A — and a bounded memory budget. Both are modeled here;
// handler bodies run as goroutines pinned to logical thread IDs.
package dpa

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// BlueField-3 DPA memory hierarchy (§IV-E).
const (
	// L2CacheBytes is the BF3 DPA L2 cache size (1.5 MiB).
	L2CacheBytes = 3 * 512 * 1024
	// L3CacheBytes is the BF3 DPA L3 cache size (3 MiB).
	L3CacheBytes = 3 * 1024 * 1024
	// DefaultThreads matches the paper's prototype (32 DPA threads,
	// "limited by the bookkeeping bitmap size").
	DefaultThreads = 32
	// MaxThreads is the BF3 hardware thread count.
	MaxThreads = 256
)

// ErrOutOfMemory is returned when an arena allocation exceeds capacity; the
// caller is expected to fall back to host (software) handling, as §IV-E
// prescribes when the DPA runs out of resources.
var ErrOutOfMemory = errors.New("dpa: out of NIC memory")

// Arena is a bounded NIC-memory allocator with usage accounting. It backs
// bounce buffers, unexpected-message storage, and table budgeting.
type Arena struct {
	mu       sync.Mutex
	capacity int
	used     int
	peak     int
}

// NewArena returns an arena with the given capacity in bytes.
func NewArena(capacity int) *Arena {
	return &Arena{capacity: capacity}
}

// Allocation is a chunk of NIC memory; call Release when done.
type Allocation struct {
	Bytes []byte
	arena *Arena
	freed bool
}

// Alloc reserves n bytes, or fails with ErrOutOfMemory.
func (a *Arena) Alloc(n int) (*Allocation, error) {
	if n < 0 {
		return nil, fmt.Errorf("dpa: negative allocation %d", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+n > a.capacity {
		return nil, ErrOutOfMemory
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return &Allocation{Bytes: make([]byte, n), arena: a}, nil
}

// Release returns the allocation's bytes to the arena. Releasing twice is
// a no-op.
func (al *Allocation) Release() {
	if al.freed || al.arena == nil {
		return
	}
	al.freed = true
	al.arena.mu.Lock()
	al.arena.used -= len(al.Bytes)
	al.arena.mu.Unlock()
}

// Used returns the bytes currently allocated.
func (a *Arena) Used() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark.
func (a *Arena) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Capacity returns the configured capacity.
func (a *Arena) Capacity() int { return a.capacity }

// Accelerator is the simulated DPA: a fixed pool of execution units that
// run handler activations to completion.
type Accelerator struct {
	threads int
	arena   *Arena

	work chan ticket
	wg   sync.WaitGroup

	activations atomic.Uint64
	closed      atomic.Bool
}

// blockState is one block's dispatch record: workers steal thread IDs by
// advancing the packed state word until the block is exhausted. States are
// pooled — the steady-state dispatch path allocates nothing per block —
// which is safe because every access is guarded by the generation tag (see
// ticket): a worker still inspecting a recycled state sees a bumped
// generation and walks away without touching the new block.
//
// state packs generation(32) | n(16) | next(16). Workers claim thread ID
// `next` by CAS-incrementing the word; the CAS revalidates the generation
// and the bound together, so a stale worker can never steal an ID from, or
// run a handler of, a block it holds no ticket for. n and next fit 16 bits
// because blocks never exceed MaxThreads (256) activations.
type blockState struct {
	fn    func(tid int)
	state atomic.Uint64
	wg    sync.WaitGroup
}

// ticket is one worker wake-up for one block: the block's dispatch record
// plus the generation it was issued for. Tickets pass through the work
// channel by value, so waking n workers allocates nothing.
type ticket struct {
	bs  *blockState
	gen uint32
}

// bsPool recycles block dispatch records. fn and wg are only read after a
// successful generation-validated CAS, which orders them after RunBlock's
// writes and pins the record live until the claimed activation's Done.
var bsPool = sync.Pool{New: func() any { return new(blockState) }}

// Config parameterizes the simulated device.
type Config struct {
	// Threads is the number of execution units (default DefaultThreads).
	Threads int
	// MemoryBytes is the NIC memory capacity (default L3CacheBytes).
	MemoryBytes int
}

// New starts an accelerator.
func New(cfg Config) (*Accelerator, error) {
	if cfg.Threads == 0 {
		cfg.Threads = DefaultThreads
	}
	if cfg.Threads < 1 || cfg.Threads > MaxThreads {
		return nil, fmt.Errorf("dpa: Threads must be in [1,%d], got %d", MaxThreads, cfg.Threads)
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = L3CacheBytes
	}
	a := &Accelerator{
		threads: cfg.Threads,
		arena:   NewArena(cfg.MemoryBytes),
		work:    make(chan ticket, cfg.Threads),
	}
	for i := 0; i < cfg.Threads; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	return a, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *Accelerator {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// worker executes handler activations to completion, one at a time — the
// DPA's run-to-completion discipline. Activations are claimed by stealing
// thread IDs from the block's counter, so a free worker drains as many
// consecutive activations as it can without a scheduler round-trip, while
// an activation that blocks mid-handler leaves the remaining IDs to the
// other workers woken by the block's tickets.
func (a *Accelerator) worker() {
	defer a.wg.Done()
	for t := range a.work {
		bs := t.bs
		for {
			v := bs.state.Load()
			if uint32(v>>32) != t.gen {
				break // the record moved on to a later block
			}
			n := int(v>>16) & 0xFFFF
			tid := int(v) & 0xFFFF
			if tid >= n {
				break // block exhausted: surplus ticket
			}
			if !bs.state.CompareAndSwap(v, v+1) {
				continue // lost the claim race; retry on the fresh word
			}
			bs.fn(tid)
			a.activations.Add(1)
			bs.wg.Done()
		}
	}
}

// RunBlock executes fn(0) … fn(n-1) concurrently on the pool and waits for
// all of them — one activation per message of a matching block. n may not
// exceed the thread count.
func (a *Accelerator) RunBlock(n int, fn func(tid int)) {
	if n > a.threads {
		panic(fmt.Sprintf("dpa: RunBlock(%d) exceeds %d threads", n, a.threads))
	}
	bs := bsPool.Get().(*blockState)
	gen := uint32(bs.state.Load()>>32) + 1
	bs.fn = fn
	bs.wg.Add(n)
	// Publishing the new generation ends any straggler from the record's
	// previous life: its next Load or CAS sees the bumped word and breaks.
	bs.state.Store(uint64(gen)<<32 | uint64(n)<<16)
	// One ticket per activation wakes at most n workers; any worker that
	// arrives after the IDs run out drops its ticket and moves on.
	t := ticket{bs: bs, gen: gen}
	for i := 0; i < n; i++ {
		a.work <- t
	}
	bs.wg.Wait()
	bs.fn = nil
	bsPool.Put(bs)
}

// Threads returns the execution-unit count.
func (a *Accelerator) Threads() int { return a.threads }

// Arena returns the device memory arena.
func (a *Accelerator) Arena() *Arena { return a.arena }

// Activations returns the number of handler activations executed.
func (a *Accelerator) Activations() uint64 { return a.activations.Load() }

// Close stops the workers. RunBlock must not be called afterwards.
func (a *Accelerator) Close() {
	if a.closed.CompareAndSwap(false, true) {
		close(a.work)
		a.wg.Wait()
	}
}
