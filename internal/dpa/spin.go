package dpa

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdma"
)

// SPINPipeline maps optimistic tag matching onto a sPIN-style streaming
// accelerator (§IV: "this approach can be also mapped onto other
// programmable on-NIC accelerators, like sPIN"). Where the DPA model runs
// one run-to-completion handler per message, sPIN executes per-packet
// handler chains on a pool of handler processing units (HPUs): a header
// handler for a message's first packet — which is where the optimistic
// match executes — then payload handlers for every subsequent MTU-sized
// packet (copying data toward its destination), and a completion handler
// once all packets of the message are done.
//
// The matching core is untouched: the header handlers of a block of
// messages call Block.Match exactly as DPA threads do, demonstrating that
// the algorithm only assumes parallel run-to-completion execution, not a
// specific accelerator.
type SPINPipeline struct {
	acc     *Accelerator
	matcher *core.OptimisticMatcher
	cq      *rdma.CQ

	// MTU is the packet size payload handlers operate on (default 256).
	MTU int
	// Decode parses a completion into an envelope (header packet view),
	// filling env (drawn from Envelopes) and returning it.
	Decode func(c rdma.Completion, env *match.Envelope) *match.Envelope
	// Payload processes one MTU chunk of a matched message on an HPU; off
	// is the chunk offset within the message payload. It may be nil.
	Payload func(res core.Result, c rdma.Completion, off, n int)
	// Complete runs once per message after its payload handlers finish.
	Complete func(res core.Result, c rdma.Completion)

	// Envelopes supplies reusable envelopes to Decode; matched envelopes
	// are recycled after their completion handler, unexpected ones escape
	// to the matcher's store.
	Envelopes *match.EnvelopePool

	cursor   uint64
	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	messages atomic.Uint64
	packets  atomic.Uint64
}

// NewSPINPipeline wires a sPIN-personality pipeline.
func NewSPINPipeline(acc *Accelerator, m *core.OptimisticMatcher, cq *rdma.CQ) *SPINPipeline {
	return &SPINPipeline{
		acc: acc, matcher: m, cq: cq, MTU: 256,
		Envelopes: new(match.EnvelopePool),
		done:      make(chan struct{}),
	}
}

// Start launches the stream loop. Decode and Complete must be set.
func (p *SPINPipeline) Start() {
	if p.Decode == nil || p.Complete == nil {
		panic("dpa: SPINPipeline requires Decode and Complete")
	}
	if p.MTU <= 0 {
		p.MTU = 256
	}
	p.wg.Add(1)
	go p.run()
}

// Stop terminates the loop and waits for in-flight handler chains.
func (p *SPINPipeline) Stop() {
	p.stopOnce.Do(func() { close(p.done) })
	p.cq.Close()
	p.wg.Wait()
}

// Messages returns the number of messages processed.
func (p *SPINPipeline) Messages() uint64 { return p.messages.Load() }

// Packets returns the number of payload packets processed by HPUs.
func (p *SPINPipeline) Packets() uint64 { return p.packets.Load() }

func (p *SPINPipeline) run() {
	defer p.wg.Done()
	blockSize := p.matcher.Config().BlockSize
	scratch := make([]rdma.Completion, blockSize)
	resultBuf := make([]core.Result, blockSize)
	for {
		n, ok := p.cq.WaitBatch(p.cursor, scratch)
		if !ok {
			return
		}
		comps := scratch[:n]

		// Header handlers: the optimistic matching block.
		results := resultBuf[:n]
		blk := p.matcher.BeginBlock(n)
		p.acc.RunBlock(n, func(tid int) {
			env := p.Envelopes.Get()
			env = p.Decode(comps[tid], env)
			blk.Match(tid, env)
		})
		// FinishInto delivers the settled results: with blocks in flight a
		// Match-time result may still be revised at retirement.
		blk.FinishInto(results)

		// Payload handlers: fan each message's MTU chunks over the HPUs.
		// Chunks of all messages of the block interleave freely, as packets
		// would on the wire.
		type chunk struct {
			msg    int
			off, n int
		}
		var chunks []chunk
		for mi, c := range comps {
			payload := len(c.Data)
			for off := 0; off < payload; off += p.MTU {
				sz := p.MTU
				if off+sz > payload {
					sz = payload - off
				}
				chunks = append(chunks, chunk{msg: mi, off: off, n: sz})
			}
		}
		for start := 0; start < len(chunks); start += p.acc.Threads() {
			end := start + p.acc.Threads()
			if end > len(chunks) {
				end = len(chunks)
			}
			batch := chunks[start:end]
			p.acc.RunBlock(len(batch), func(tid int) {
				ck := batch[tid]
				if p.Payload != nil {
					p.Payload(results[ck.msg], comps[ck.msg], ck.off, ck.n)
				}
			})
			p.packets.Add(uint64(len(batch)))
		}

		// Completion handlers.
		p.acc.RunBlock(n, func(tid int) {
			p.Complete(results[tid], comps[tid])
		})
		for _, res := range results {
			if !res.Unexpected {
				p.Envelopes.Put(res.Env)
			}
		}

		p.cursor += uint64(n)
		p.cq.Trim(p.cursor)
		p.messages.Add(uint64(n))

		select {
		case <-p.done:
			if _, ok := p.cq.Poll(p.cursor); !ok {
				return
			}
		default:
		}
	}
}
