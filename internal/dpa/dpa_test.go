package dpa

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdma"
)

func TestArenaAccounting(t *testing.T) {
	a := NewArena(1024)
	al1, err := a.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	al2, err := a.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err != ErrOutOfMemory {
		t.Fatalf("over-capacity alloc: %v", err)
	}
	if a.Used() != 1024 || a.Peak() != 1024 {
		t.Fatalf("used=%d peak=%d", a.Used(), a.Peak())
	}
	al1.Release()
	al1.Release() // double release is a no-op
	if a.Used() != 512 {
		t.Fatalf("used after release = %d", a.Used())
	}
	if a.Peak() != 1024 {
		t.Fatalf("peak must persist, got %d", a.Peak())
	}
	al2.Release()
	if a.Capacity() != 1024 {
		t.Fatalf("capacity = %d", a.Capacity())
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestAcceleratorRunBlock(t *testing.T) {
	acc := MustNew(Config{Threads: 8})
	defer acc.Close()
	var seen [8]atomic.Bool
	acc.RunBlock(8, func(tid int) { seen[tid].Store(true) })
	for tid := range seen {
		if !seen[tid].Load() {
			t.Fatalf("thread %d never ran", tid)
		}
	}
	if acc.Activations() != 8 {
		t.Fatalf("activations = %d, want 8", acc.Activations())
	}
	if acc.Threads() != 8 {
		t.Fatalf("threads = %d", acc.Threads())
	}
}

func TestAcceleratorRunBlockTooWide(t *testing.T) {
	acc := MustNew(Config{Threads: 2})
	defer acc.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RunBlock beyond thread count must panic")
		}
	}()
	acc.RunBlock(3, func(int) {})
}

func TestAcceleratorConfigValidation(t *testing.T) {
	if _, err := New(Config{Threads: -1}); err == nil {
		t.Fatal("negative threads accepted")
	}
	if _, err := New(Config{Threads: MaxThreads + 1}); err == nil {
		t.Fatal("too many threads accepted")
	}
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Threads() != DefaultThreads {
		t.Fatalf("default threads = %d", a.Threads())
	}
	if a.Arena().Capacity() != L3CacheBytes {
		t.Fatalf("default memory = %d", a.Arena().Capacity())
	}
	a.Close() // double close is safe
}

func TestAcceleratorParallelismWithinBlock(t *testing.T) {
	// All block threads must be live simultaneously (the matching engine's
	// partial barrier requires it): have every thread wait for all others.
	acc := MustNew(Config{Threads: 16})
	defer acc.Close()
	var mu sync.Mutex
	waiting := 0
	cond := sync.NewCond(&mu)
	acc.RunBlock(16, func(tid int) {
		mu.Lock()
		waiting++
		if waiting == 16 {
			cond.Broadcast()
		} else {
			for waiting < 16 {
				cond.Wait()
			}
		}
		mu.Unlock()
	})
}

// TestPipelineEndToEnd drives RDMA completions through the pipeline and
// checks matches and unexpected handling.
func TestPipelineEndToEnd(t *testing.T) {
	acc := MustNew(Config{Threads: 8})
	defer acc.Close()
	matcher := core.MustNew(core.Config{
		Bins: 64, MaxReceives: 256, BlockSize: 8,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	})
	cq := rdma.NewCQ()
	p := NewPipeline(acc, matcher, cq)

	type outcome struct {
		matched bool
		src     match.Rank
	}
	var mu sync.Mutex
	outcomes := make(map[uint64]outcome)

	p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
		env.Source = match.Rank(c.Imm >> 16)
		env.Tag = match.Tag(c.Imm & 0xffff)
		return env
	}
	p.Handle = func(tid int, res core.Result, c rdma.Completion) {
		mu.Lock()
		outcomes[res.Env.Seq] = outcome{matched: !res.Unexpected, src: res.Env.Source}
		mu.Unlock()
	}
	p.Start()

	// Post receives for sources 0..3, tag 5; sources 4..7 will be unexpected.
	for src := 0; src < 4; src++ {
		if _, _, err := matcher.PostRecv(&match.Recv{Source: match.Rank(src), Tag: 5}); err != nil {
			t.Fatal(err)
		}
	}
	for src := 0; src < 8; src++ {
		cq.Push(rdma.Completion{Op: rdma.OpRecv, Imm: uint32(src<<16 | 5)})
	}
	// Wait until all eight messages are processed, then stop.
	for p.Messages() < 8 {
	}
	p.Stop()

	if p.Blocks() == 0 || p.Messages() != 8 {
		t.Fatalf("blocks=%d messages=%d", p.Blocks(), p.Messages())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(outcomes) != 8 {
		t.Fatalf("outcomes = %d, want 8", len(outcomes))
	}
	for _, o := range outcomes {
		if o.src < 4 && !o.matched {
			t.Fatalf("source %d should have matched", o.src)
		}
		if o.src >= 4 && o.matched {
			t.Fatalf("source %d should be unexpected", o.src)
		}
	}
	if matcher.UnexpectedDepth() != 4 {
		t.Fatalf("unexpected depth = %d, want 4", matcher.UnexpectedDepth())
	}
}

func TestPipelineRequiresCallbacks(t *testing.T) {
	acc := MustNew(Config{Threads: 2})
	defer acc.Close()
	matcher := core.MustNew(core.Config{Bins: 4, MaxReceives: 4, BlockSize: 2,
		LazyRemoval: true})
	p := NewPipeline(acc, matcher, rdma.NewCQ())
	defer func() {
		if recover() == nil {
			t.Fatal("Start without callbacks must panic")
		}
	}()
	p.Start()
}

// TestPipelineStopDrainRace races Stop against a producer that keeps
// pushing completions. The pipeline must neither deadlock nor lose
// already-drained messages, and Messages() must be stable once Stop
// returns. Run under -race in CI.
func TestPipelineStopDrainRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		acc := MustNew(Config{Threads: 4})
		matcher := core.MustNew(core.Config{
			Bins: 64, MaxReceives: 4096, BlockSize: 4, LazyRemoval: true,
		})
		cq := rdma.NewCQ()
		p := NewPipeline(acc, matcher, cq)
		var handled atomic.Uint64
		p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
			env.Source = 1
			env.Tag = match.Tag(c.Imm)
			return env
		}
		p.Handle = func(tid int, res core.Result, c rdma.Completion) {
			handled.Add(1)
		}
		p.Start()

		// Bounded flood: Stop drains whatever is in flight, so the producer
		// must terminate on its own for Stop's drain loop to converge.
		var pushed atomic.Uint64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint32(0); i < 2000; i++ {
				cq.Push(rdma.Completion{Op: rdma.OpRecv, Imm: i})
				pushed.Add(1)
			}
		}()

		// Let some traffic flow, then stop mid-stream.
		for handled.Load() < 8 {
		}
		p.Stop()
		wg.Wait()

		got := p.Messages()
		if got != handled.Load() {
			t.Fatalf("iter %d: Messages()=%d but Handle ran %d times", iter, got, handled.Load())
		}
		if got > pushed.Load() {
			t.Fatalf("iter %d: processed %d of %d pushed", iter, got, pushed.Load())
		}
		acc.Close()
	}
}
