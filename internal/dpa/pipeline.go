package dpa

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdma"
)

// Pipeline is the offloaded tag-matching datapath of §IV: it drains a
// receive completion queue in blocks of consecutive messages, runs one
// handler activation per message on the accelerator (each performing the
// optimistic match), and hands every result to a protocol callback that
// executes the eager copy, the rendezvous read, or unexpected-message
// storage — all without host involvement.
type Pipeline struct {
	acc     *Accelerator
	matcher *core.OptimisticMatcher
	cq      *rdma.CQ

	// Decode converts a receive completion (header + bounce buffer) into a
	// matching envelope. It runs on a DPA thread.
	Decode func(c rdma.Completion) *match.Envelope
	// Handle executes protocol handling for one match result on a DPA
	// thread: eager copy to the user buffer, rendezvous RDMA read, or
	// unexpected-message stabilization (copying the payload out of the
	// bounce buffer before it is reposted).
	Handle func(tid int, res core.Result, c rdma.Completion)
	// Classify, when set, reports whether a completion carries a message
	// that needs matching. Completions classified false (protocol control
	// traffic such as rendezvous acknowledgements) are passed to Control
	// instead of entering a matching block.
	Classify func(c rdma.Completion) bool
	// Control handles non-matching completions; required when Classify is set.
	Control func(c rdma.Completion)

	cursor   uint64
	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	blocks   atomic.Uint64
	messages atomic.Uint64
}

// NewPipeline wires a pipeline; call Start to begin draining.
func NewPipeline(acc *Accelerator, m *core.OptimisticMatcher, cq *rdma.CQ) *Pipeline {
	return &Pipeline{acc: acc, matcher: m, cq: cq, done: make(chan struct{})}
}

// Start launches the block-forming loop. Decode and Handle must be set.
func (p *Pipeline) Start() {
	if p.Decode == nil || p.Handle == nil {
		panic("dpa: Pipeline requires Decode and Handle")
	}
	if p.Classify != nil && p.Control == nil {
		panic("dpa: Pipeline with Classify requires Control")
	}
	p.wg.Add(1)
	go p.run()
}

// Stop terminates the loop once the CQ closes or immediately if idle, and
// waits for in-flight blocks to finish.
func (p *Pipeline) Stop() {
	p.stopOnce.Do(func() { close(p.done) })
	p.cq.Close()
	p.wg.Wait()
}

// Blocks returns the number of matching blocks processed.
func (p *Pipeline) Blocks() uint64 { return p.blocks.Load() }

// Messages returns the number of messages processed.
func (p *Pipeline) Messages() uint64 { return p.messages.Load() }

// run forms blocks: it blocks for the next completion, then opportunistically
// folds in whatever further completions are already available, up to the
// matcher's block size (the stream-of-blocks model of §III-A).
func (p *Pipeline) run() {
	defer p.wg.Done()
	blockSize := p.matcher.Config().BlockSize
	for {
		first, ok := p.cq.WaitIndex(p.cursor)
		if !ok {
			return
		}
		gathered := []rdma.Completion{first}
		for len(gathered) < blockSize {
			c, ok := p.cq.Poll(p.cursor + uint64(len(gathered)))
			if !ok {
				break
			}
			gathered = append(gathered, c)
		}

		// Control traffic (e.g. rendezvous ACKs) bypasses matching.
		comps := gathered[:0:0]
		for _, c := range gathered {
			if p.Classify != nil && !p.Classify(c) {
				p.Control(c)
				continue
			}
			comps = append(comps, c)
		}

		if n := len(comps); n > 0 {
			blk := p.matcher.BeginBlock(n)
			p.acc.RunBlock(n, func(tid int) {
				env := p.Decode(comps[tid])
				res := blk.Match(tid, env)
				p.Handle(tid, res, comps[tid])
			})
			blk.Finish()
			p.blocks.Add(1)
			p.messages.Add(uint64(n))
		}

		p.cursor += uint64(len(gathered))
		p.cq.Trim(p.cursor)

		select {
		case <-p.done:
			// Drain whatever is still immediately available, then exit.
			if _, ok := p.cq.Poll(p.cursor); !ok {
				return
			}
		default:
		}
	}
}
