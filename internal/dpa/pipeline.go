package dpa

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdma"
)

// Pipeline is the offloaded tag-matching datapath of §IV: it drains a
// receive completion queue in blocks of consecutive messages, runs one
// handler activation per message on the accelerator (each performing the
// optimistic match), and hands every result to a protocol callback that
// executes the eager copy, the rendezvous read, or unexpected-message
// storage — all without host involvement.
//
// The datapath is engineered for the steady state: completions are drained
// in batches (one CQ lock acquisition per block), block formation is
// double-buffered (block k+1 is gathered and classified while block k's
// handlers run), and envelopes come from a pool — a saturated pipeline
// allocates nothing per message.
type Pipeline struct {
	acc     *Accelerator
	matcher *core.OptimisticMatcher
	cq      *rdma.CQ

	// Decode converts a receive completion (header + bounce buffer) into a
	// matching envelope, filling env (drawn from Envelopes) and returning
	// it. It runs on a DPA thread.
	Decode func(c rdma.Completion, env *match.Envelope) *match.Envelope
	// Handle executes protocol handling for one match result on a DPA
	// thread: eager copy to the user buffer, rendezvous RDMA read, or
	// unexpected-message stabilization (copying the payload out of the
	// bounce buffer before it is reposted).
	Handle func(tid int, res core.Result, c rdma.Completion)
	// Classify, when set, reports whether a completion carries a message
	// that needs matching. Completions classified false (protocol control
	// traffic such as rendezvous acknowledgements) are passed to Control
	// instead of entering a matching block.
	Classify func(c rdma.Completion) bool
	// Control handles non-matching completions; required when Classify is set.
	Control func(c rdma.Completion)

	// Envelopes supplies the reusable envelopes passed to Decode. Matched
	// envelopes return to the pool right after Handle; unexpected ones
	// escape into the matcher's store, and whoever delivers them later is
	// responsible for putting them back. NewPipeline installs a private
	// pool; replace it before Start to share one across components.
	Envelopes *match.EnvelopePool

	cursor   uint64
	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	blocks   atomic.Uint64
	messages atomic.Uint64
}

// NewPipeline wires a pipeline; call Start to begin draining.
func NewPipeline(acc *Accelerator, m *core.OptimisticMatcher, cq *rdma.CQ) *Pipeline {
	return &Pipeline{
		acc: acc, matcher: m, cq: cq,
		Envelopes: new(match.EnvelopePool),
		done:      make(chan struct{}),
	}
}

// Start launches the block-forming loop. Decode and Handle must be set.
func (p *Pipeline) Start() {
	if p.Decode == nil || p.Handle == nil {
		panic("dpa: Pipeline requires Decode and Handle")
	}
	if p.Classify != nil && p.Control == nil {
		panic("dpa: Pipeline with Classify requires Control")
	}
	p.wg.Add(1)
	go p.run()
}

// Stop terminates the loop once the CQ closes or immediately if idle, and
// waits for in-flight blocks to finish.
func (p *Pipeline) Stop() {
	p.stopOnce.Do(func() { close(p.done) })
	p.cq.Close()
	p.wg.Wait()
}

// Blocks returns the number of matching blocks processed.
func (p *Pipeline) Blocks() uint64 { return p.blocks.Load() }

// Messages returns the number of messages processed.
func (p *Pipeline) Messages() uint64 { return p.messages.Load() }

// window is one half of the double buffer: a scratch array the CQ batch is
// drained into and the filtered match-bound subset. Both are allocated once
// and recycled for the pipeline's lifetime.
type window struct {
	scratch []rdma.Completion
	comps   []rdma.Completion
}

// blockRunner carries the per-block state of the handler activations. Its
// step method is bound once (a single closure allocation per pipeline) so
// dispatching a block allocates nothing.
type blockRunner struct {
	p     *Pipeline
	comps []rdma.Completion
	blk   *core.Block
}

// step is one handler activation (§IV-B): decode into a pooled envelope,
// match, run the protocol handler, recycle. Unexpected envelopes escape to
// the matcher's store and are recycled by their eventual deliverer.
func (r *blockRunner) step(tid int) {
	c := r.comps[tid]
	env := r.p.Envelopes.Get()
	env = r.p.Decode(c, env)
	res := r.blk.Match(tid, env)
	r.p.Handle(tid, res, c)
	if !res.Unexpected {
		r.p.Envelopes.Put(env)
	}
}

// run forms blocks: it drains the next batch of completions — blocking for
// the first — classifies it, and hands match-bound completions to the
// launcher goroutine, which runs the matching blocks in arrival order.
// Two windows ping-pong between the two goroutines, so while the
// accelerator executes block k's handlers the formation loop is already
// gathering and classifying block k+1 (the stream-of-blocks model of
// §III-A, pipelined).
func (p *Pipeline) run() {
	defer p.wg.Done()
	blockSize := p.matcher.Config().BlockSize

	var windows [2]window
	idle := make(chan *window, len(windows))
	for i := range windows {
		windows[i].scratch = make([]rdma.Completion, blockSize)
		windows[i].comps = make([]rdma.Completion, 0, blockSize)
		idle <- &windows[i]
	}

	jobs := make(chan *window)
	var lwg sync.WaitGroup
	lwg.Add(1)
	go func() { // launcher: executes matching blocks in arrival order
		defer lwg.Done()
		run := blockRunner{p: p}
		step := run.step
		for w := range jobs {
			n := len(w.comps)
			run.comps = w.comps
			run.blk = p.matcher.BeginBlock(n)
			p.acc.RunBlock(n, step)
			run.blk.Finish()
			p.blocks.Add(1)
			p.messages.Add(uint64(n))
			idle <- w
		}
	}()
	defer func() {
		close(jobs)
		lwg.Wait()
	}()

	for {
		w := <-idle
		n, ok := p.cq.WaitBatch(p.cursor, w.scratch)
		if !ok {
			return
		}
		gathered := w.scratch[:n]

		// Control traffic (e.g. rendezvous ACKs) bypasses matching; it is
		// handled here on the formation loop, overlapping the previous
		// block's handlers. Error completions (transport faults such as
		// rdma.ErrBufferSize) never enter a matching block: they go to
		// Control when one is installed and are discarded otherwise.
		w.comps = w.comps[:0]
		for _, c := range gathered {
			if c.Err != nil {
				if p.Control != nil {
					p.Control(c)
				}
				continue
			}
			if p.Classify != nil && !p.Classify(c) {
				p.Control(c)
				continue
			}
			w.comps = append(w.comps, c)
		}

		p.cursor += uint64(n)
		p.cq.Trim(p.cursor)

		if len(w.comps) > 0 {
			jobs <- w
		} else {
			idle <- w
		}

		select {
		case <-p.done:
			// Drain whatever is still immediately available, then exit.
			if p.cq.Ready() <= p.cursor {
				return
			}
		default:
		}
	}
}
