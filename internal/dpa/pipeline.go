package dpa

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// Pipeline is the offloaded tag-matching datapath of §IV: it drains a
// receive completion queue in blocks of consecutive messages, runs one
// handler activation per message on the accelerator (each performing the
// optimistic match), and hands every result to a protocol callback that
// executes the eager copy, the rendezvous read, or unexpected-message
// storage — all without host involvement.
//
// The datapath is engineered for the steady state: completions are drained
// in batches (one CQ lock acquisition per block), block formation overlaps
// block execution, and envelopes come from a pool — a saturated pipeline
// allocates nothing per message.
//
// With Config.InFlightBlocks > 1 the pipeline keeps a depth-K window of
// matching blocks in flight: block k+1's handlers run while block k's are
// still matching, with the matcher's retire frontier settling results in
// arrival order (DESIGN.md §9). Depth 1 reproduces the original serial
// launcher exactly. The effective depth is clamped so that
// depth × BlockSize never exceeds the accelerator's thread count —
// otherwise activations of a newer block could occupy every worker while
// parked at the partial barrier, starving the older block they wait on.
type Pipeline struct {
	acc     *Accelerator
	matcher *core.OptimisticMatcher
	cq      *rdma.CQ

	// Decode converts a receive completion (header + bounce buffer) into a
	// matching envelope, filling env (drawn from Envelopes) and returning
	// it. It runs on a DPA thread.
	Decode func(c rdma.Completion, env *match.Envelope) *match.Envelope
	// Handle executes protocol handling for one match result on a DPA
	// thread: eager copy to the user buffer, rendezvous RDMA read, or
	// unexpected-message bookkeeping. For results that settle at Match time
	// it runs on the handler's thread; for results deferred to block
	// retirement (cross-block conflicts, unexpected messages) it runs on
	// the retiring block's runner.
	Handle func(tid int, res core.Result, c rdma.Completion)
	// Classify, when set, reports whether a completion carries a message
	// that needs matching. Completions classified false (protocol control
	// traffic such as rendezvous acknowledgements) are passed to Control
	// instead of entering a matching block.
	Classify func(c rdma.Completion) bool
	// Control handles non-matching completions; required when Classify is set.
	Control func(c rdma.Completion)
	// Expand, when set, unbatches one match-bound completion into the
	// burst of completions it carries (a coalesced multi-message frame
	// becomes one completion per sub-message), appending them to out and
	// returning the extended slice. Returning out unchanged drops the
	// completion (Expand owns its buffer then). Bursts larger than the
	// block size are formed into consecutive blocks, so a wide frame
	// naturally fills whole matching blocks.
	Expand func(c rdma.Completion, out []rdma.Completion) []rdma.Completion

	// Envelopes supplies the reusable envelopes passed to Decode. Matched
	// envelopes return to the pool right after Handle; unexpected ones
	// escape into the matcher's store, and whoever delivers them later is
	// responsible for putting them back. NewPipeline installs a private
	// pool; replace it before Start to share one across components.
	Envelopes *match.EnvelopePool

	cursor   uint64
	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	blocks   atomic.Uint64
	messages atomic.Uint64
}

// NewPipeline wires a pipeline; call Start to begin draining.
func NewPipeline(acc *Accelerator, m *core.OptimisticMatcher, cq *rdma.CQ) *Pipeline {
	return &Pipeline{
		acc: acc, matcher: m, cq: cq,
		Envelopes: new(match.EnvelopePool),
		done:      make(chan struct{}),
	}
}

// Start launches the block-forming loop. Decode and Handle must be set.
func (p *Pipeline) Start() {
	if p.Decode == nil || p.Handle == nil {
		panic("dpa: Pipeline requires Decode and Handle")
	}
	if p.Classify != nil && p.Control == nil {
		panic("dpa: Pipeline with Classify requires Control")
	}
	p.wg.Add(1)
	go p.run()
}

// Stop terminates the loop once the CQ closes or immediately if idle, and
// waits for in-flight blocks to finish.
func (p *Pipeline) Stop() {
	p.stopOnce.Do(func() { close(p.done) })
	p.cq.Close()
	p.wg.Wait()
}

// Blocks returns the number of matching blocks processed.
func (p *Pipeline) Blocks() uint64 { return p.blocks.Load() }

// Messages returns the number of messages processed.
func (p *Pipeline) Messages() uint64 { return p.messages.Load() }

// window is one slot of the formation buffer: one block's worth of
// match-bound completions and the arrival block begun for them. All
// windows are allocated once and recycled for the pipeline's lifetime.
type window struct {
	comps []rdma.Completion
	blk   *core.Block
}

// blockRunner carries the per-block state of the handler activations. Its
// step and deliver methods are bound once per runner goroutine (two closure
// allocations per pipeline runner) so dispatching a block allocates
// nothing.
type blockRunner struct {
	p     *Pipeline
	comps []rdma.Completion
	blk   *core.Block
}

// step is one handler activation (§IV-B): decode into a pooled envelope,
// match, and — when the result is final at Match time — run the protocol
// handler and recycle. Non-final results (cross-block conflicts, unexpected
// messages) are handled by deliver when the block retires.
func (r *blockRunner) step(tid int) {
	c := r.comps[tid]
	env := r.p.Envelopes.Get()
	env = r.p.Decode(c, env)
	res, final := r.blk.Match(tid, env)
	if final {
		r.p.Handle(tid, res, c)
		if !res.Unexpected {
			r.p.Envelopes.Put(env)
		}
	}
}

// deliver runs protocol handling for a result that settled at block
// retirement. Unexpected envelopes escape to the matcher's store and are
// recycled by their eventual deliverer.
func (r *blockRunner) deliver(tid int, res core.Result) {
	r.p.Handle(tid, res, r.comps[tid])
	if !res.Unexpected {
		r.p.Envelopes.Put(res.Env)
	}
}

// run forms blocks: it drains the next batch of completions — blocking for
// the first — classifies it, begins the arrival block (in arrival order;
// the matcher's ring applies backpressure when too many blocks are in
// flight), and hands it to a runner goroutine. With K runners, K matching
// blocks execute concurrently while the formation loop is already gathering
// and classifying the next batch (the stream-of-blocks model of §III-A,
// pipelined in depth as well as in formation).
func (p *Pipeline) run() {
	defer p.wg.Done()
	o := p.matcher.Obs() // CQ drains land in the matcher's sink (one domain per rank)
	cfg := p.matcher.Config()
	blockSize := cfg.BlockSize
	depth := cfg.InFlightBlocks
	if m := p.acc.Threads() / blockSize; depth > m {
		depth = m
	}
	if depth < 1 {
		depth = 1
	}

	windows := make([]window, depth+1)
	idle := make(chan *window, len(windows))
	for i := range windows {
		windows[i].comps = make([]rdma.Completion, 0, blockSize)
		idle <- &windows[i]
	}
	// scratch receives each raw CQ batch; formed is the classified (and,
	// with Expand, unbatched) match-bound stream it yields. Both are
	// reused across iterations — formed grows once to the widest burst and
	// then the formation loop allocates nothing.
	scratch := make([]rdma.Completion, blockSize)
	formed := make([]rdma.Completion, 0, blockSize)

	jobs := make(chan *window, depth)
	var lwg sync.WaitGroup
	lwg.Add(depth)
	for i := 0; i < depth; i++ {
		go func() { // runner: executes one matching block at a time
			defer lwg.Done()
			run := blockRunner{p: p}
			step := run.step
			deliver := run.deliver
			for w := range jobs {
				n := len(w.comps)
				run.comps = w.comps
				run.blk = w.blk
				run.blk.Deliver = deliver
				p.acc.RunBlock(n, step)
				run.blk.Finish()
				// Count messages only after retirement: by then every
				// deferred Handle has run, so observers that see the count
				// see the handling too.
				p.blocks.Add(1)
				p.messages.Add(uint64(n))
				run.blk = nil
				w.blk = nil
				idle <- w
			}
		}()
	}
	defer func() {
		close(jobs)
		lwg.Wait()
	}()

	for {
		n, ok := p.cq.WaitBatch(p.cursor, scratch)
		if !ok {
			return
		}
		gathered := scratch[:n]

		// Control traffic (e.g. rendezvous ACKs) bypasses matching; it is
		// handled here on the formation loop, overlapping in-flight blocks'
		// handlers. Error completions (transport faults such as
		// rdma.ErrBufferSize) never enter a matching block: they go to
		// Control when one is installed and are discarded otherwise.
		formed = formed[:0]
		for _, c := range gathered {
			if c.Err != nil {
				if p.Control != nil {
					p.Control(c)
				}
				continue
			}
			if p.Classify != nil && !p.Classify(c) {
				p.Control(c)
				continue
			}
			if p.Expand != nil {
				formed = p.Expand(c, formed)
				continue
			}
			formed = append(formed, c)
		}

		p.cursor += uint64(n)
		p.cq.Trim(p.cursor)
		o.Counters.Inc(obs.CtrCQDrains)
		o.Counters.Add(obs.CtrCQCompletions, uint64(n))
		o.Observe(obs.HistDrainBatch, uint64(n))
		if o.Enabled() {
			o.Event(obs.EvCQDrain, 0, uint64(n), p.cursor, uint64(len(formed)))
		}

		// Form the match-bound stream into blocks of at most blockSize
		// messages: an unbatched frame wider than one block fills several
		// consecutive ones. Blocks begin here, on the formation loop, so
		// block sequence numbers follow arrival order regardless of which
		// runner executes each block; the idle-window wait applies the
		// same depth backpressure the per-window drain used to.
		for off := 0; off < len(formed); off += blockSize {
			end := off + blockSize
			if end > len(formed) {
				end = len(formed)
			}
			w := <-idle
			w.comps = append(w.comps[:0], formed[off:end]...)
			w.blk = p.matcher.BeginBlock(len(w.comps))
			jobs <- w
		}

		select {
		case <-p.done:
			// Drain whatever is still immediately available, then exit.
			if p.cq.Ready() <= p.cursor {
				return
			}
		default:
		}
	}
}
