package dpa

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// BenchmarkArrivalHotPath measures the steady-state arrival datapath end to
// end — CQ batch drain, block formation, pooled envelope decode, optimistic
// match, handler dispatch — for a single-process eager ping flood where
// every message finds a pre-posted receive. With the pooling and batching
// in place the loop must run at zero heap allocations per message
// (ReportAllocs verifies; EXPERIMENTS.md records the numbers).
func BenchmarkArrivalHotPath(b *testing.B) {
	benchArrivalHotPath(b, obs.Options{})
}

// BenchmarkArrivalHotPathTraced is the same flood with event tracing on:
// the delta against BenchmarkArrivalHotPath is the observability layer's
// enabled overhead (EXPERIMENTS.md budgets it under 5%).
func BenchmarkArrivalHotPathTraced(b *testing.B) {
	benchArrivalHotPath(b, obs.Options{}.Tracing())
}

func benchArrivalHotPath(b *testing.B, opts obs.Options) {
	acc := MustNew(Config{Threads: 8})
	defer acc.Close()
	matcher := core.MustNew(core.Config{
		Bins: 2048, MaxReceives: 8192, BlockSize: 8,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	})
	matcher.SetObs(obs.New(opts))
	cq := rdma.NewCQ()
	p := NewPipeline(acc, matcher, cq)
	p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
		env.Source = 1
		env.Tag = 5
		return env
	}
	p.Handle = func(tid int, res core.Result, c rdma.Completion) {}
	p.Start()
	defer p.Stop()

	// A ring of reusable receives: slot i%window is guaranteed released by
	// the time it is reposted because the flood never runs more than
	// 2*lag ahead of the pipeline (see the backpressure check below).
	const window = 512
	const lag = 128
	recvs := make([]match.Recv, window)
	comp := rdma.Completion{Op: rdma.OpRecv}

	pushed := 0
	pump := func(n int) {
		for i := 0; i < n; i++ {
			r := &recvs[pushed%window]
			r.Source, r.Tag = 1, 5
			if _, _, err := matcher.PostRecv(r); err != nil {
				b.Fatal(err)
			}
			cq.Push(comp)
			pushed++
			if pushed%lag == 0 {
				for p.Messages() < uint64(pushed-lag) {
					runtime.Gosched()
				}
			}
		}
		for p.Messages() < uint64(pushed) {
			runtime.Gosched()
		}
	}

	pump(2 * window) // warm the pools, CQ backing array, and scheduler
	b.ReportAllocs()
	b.ResetTimer()
	pump(b.N)
	b.StopTimer()
}

// BenchmarkInFlightPipeline measures the same steady-state flood as the
// in-flight window deepens: K runner goroutines keep K matching blocks
// executing concurrently, with the matcher's retire frontier serializing
// their effects. Depth 1 is the serial launcher of the original design.
// Distinct (source,tag) keys keep the workload in the no-conflict regime
// (Figure 8 "NC"), so the depths differ only in block-level overlap.
func BenchmarkInFlightPipeline(b *testing.B) {
	const blockN = 8
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "depth=1", 2: "depth=2", 4: "depth=4", 8: "depth=8"}[depth], func(b *testing.B) {
			acc := MustNew(Config{Threads: blockN * depth})
			defer acc.Close()
			matcher := core.MustNew(core.Config{
				Bins: 2048, MaxReceives: 8192, BlockSize: blockN,
				InFlightBlocks:    depth,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
			})
			cq := rdma.NewCQ()
			p := NewPipeline(acc, matcher, cq)
			var key atomic.Uint64 // arrival order is CQ order; keys rotate with it
			p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
				k := key.Add(1) - 1
				env.Source = match.Rank(k % 64)
				env.Tag = match.Tag(k / 64 % 64)
				return env
			}
			p.Handle = func(tid int, res core.Result, c rdma.Completion) {}
			p.Start()
			defer p.Stop()

			const window = 4096 // 64x64 key rotation: slot i%window reposts the same key
			const lag = 512
			recvs := make([]match.Recv, window)
			comp := rdma.Completion{Op: rdma.OpRecv}

			pushed := 0
			pump := func(n int) {
				for i := 0; i < n; i++ {
					r := &recvs[pushed%window]
					r.Source = match.Rank(uint64(pushed) % 64)
					r.Tag = match.Tag(uint64(pushed) / 64 % 64)
					if _, _, err := matcher.PostRecv(r); err != nil {
						b.Fatal(err)
					}
					cq.Push(comp)
					pushed++
					if pushed%lag == 0 {
						for p.Messages() < uint64(pushed-lag) {
							runtime.Gosched()
						}
					}
				}
				for p.Messages() < uint64(pushed) {
					runtime.Gosched()
				}
			}

			pump(2 * window)
			b.ReportAllocs()
			b.ResetTimer()
			pump(b.N)
			b.StopTimer()
		})
	}
}
