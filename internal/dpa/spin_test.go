package dpa

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdma"
)

func TestSPINPipelineEndToEnd(t *testing.T) {
	acc := MustNew(Config{Threads: 8})
	defer acc.Close()
	matcher := core.MustNew(core.Config{
		Bins: 64, MaxReceives: 64, BlockSize: 8,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	})
	cq := rdma.NewCQ()
	p := NewSPINPipeline(acc, matcher, cq)
	p.MTU = 16

	var mu sync.Mutex
	copied := map[uint32][]bool{} // per-message chunk coverage
	completed := map[uint32]bool{}

	p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
		env.Source = match.Rank(c.Imm % 4)
		env.Tag = 5
		return env
	}
	p.Payload = func(res core.Result, c rdma.Completion, off, n int) {
		mu.Lock()
		defer mu.Unlock()
		cov := copied[c.Imm]
		if cov == nil {
			cov = make([]bool, (len(c.Data)+15)/16)
			copied[c.Imm] = cov
		}
		if off%16 != 0 || cov[off/16] {
			t.Errorf("chunk (%d,%d) duplicated or misaligned", off, n)
		}
		cov[off/16] = true
	}
	p.Complete = func(res core.Result, c rdma.Completion) {
		mu.Lock()
		defer mu.Unlock()
		if res.Unexpected {
			t.Errorf("message %d went unexpected", c.Imm)
		}
		completed[c.Imm] = true
	}
	p.Start()

	const msgs = 8
	for i := 0; i < msgs; i++ {
		if _, _, err := matcher.PostRecv(&match.Recv{Source: match.Rank(i % 4), Tag: 5}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		cq.Push(rdma.Completion{Op: rdma.OpRecv, Imm: uint32(i), Data: make([]byte, 48)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Messages() < msgs {
		if time.Now().After(deadline) {
			t.Fatal("pipeline stalled")
		}
	}
	p.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(completed) != msgs {
		t.Fatalf("completed %d of %d", len(completed), msgs)
	}
	// 48-byte payloads at MTU 16 → 3 chunks each, all covered.
	if p.Packets() != msgs*3 {
		t.Fatalf("packets = %d, want %d", p.Packets(), msgs*3)
	}
	for imm, cov := range copied {
		for i, ok := range cov {
			if !ok {
				t.Fatalf("message %d chunk %d never processed", imm, i)
			}
		}
	}
}

func TestSPINPipelineRequiresHandlers(t *testing.T) {
	acc := MustNew(Config{Threads: 2})
	defer acc.Close()
	matcher := core.MustNew(core.Config{Bins: 4, MaxReceives: 4, BlockSize: 2, LazyRemoval: true})
	p := NewSPINPipeline(acc, matcher, rdma.NewCQ())
	defer func() {
		if recover() == nil {
			t.Fatal("Start without handlers must panic")
		}
	}()
	p.Start()
}

func TestSPINPipelineZeroPayload(t *testing.T) {
	// Header-only messages (e.g. rendezvous RTS) produce no payload chunks.
	acc := MustNew(Config{Threads: 4})
	defer acc.Close()
	matcher := core.MustNew(core.Config{Bins: 16, MaxReceives: 16, BlockSize: 4, LazyRemoval: true})
	cq := rdma.NewCQ()
	p := NewSPINPipeline(acc, matcher, cq)
	p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
		env.Source = 1
		env.Tag = 1
		return env
	}
	p.Complete = func(res core.Result, c rdma.Completion) {}
	p.Start()
	cq.Push(rdma.Completion{Op: rdma.OpRecv})
	deadline := time.Now().Add(5 * time.Second)
	for p.Messages() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled")
		}
	}
	p.Stop()
	if p.Packets() != 0 {
		t.Fatalf("packets = %d for a header-only message", p.Packets())
	}
}
