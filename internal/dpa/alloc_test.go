package dpa

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdma"
)

// TestArrivalHotPathAllocs is the alloc-regression guard for the arrival
// datapath (CI runs it in the ordinary test sweep): after warmup, the
// drain → classify → expand → form → match loop must stay at zero heap
// allocations per message, both for lone completions and for coalesced
// frames unbatched through the Expand hook. A width-W frame is modeled as
// one CQ completion that Expand fans out into W sub-completions, exactly
// as the MPI offload engine does for kindEagerBatch.
func TestArrivalHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard needs steady-state pumping")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	for _, width := range []int{1, 8} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			acc := MustNew(Config{Threads: 8})
			defer acc.Close()
			matcher := core.MustNew(core.Config{
				Bins: 2048, MaxReceives: 8192, BlockSize: 8,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
			})
			cq := rdma.NewCQ()
			p := NewPipeline(acc, matcher, cq)
			p.Decode = func(c rdma.Completion, env *match.Envelope) *match.Envelope {
				env.Source = 1
				env.Tag = 5
				return env
			}
			p.Handle = func(tid int, res core.Result, c rdma.Completion) {}
			if width > 1 {
				p.Expand = func(c rdma.Completion, out []rdma.Completion) []rdma.Completion {
					for i := 0; i < width; i++ {
						out = append(out, rdma.Completion{Op: c.Op})
					}
					return out
				}
			}
			p.Start()
			defer p.Stop()

			const window = 512
			const lag = 128
			recvs := make([]match.Recv, window)
			comp := rdma.Completion{Op: rdma.OpRecv}

			pushed := 0 // messages (sub-completions), not frames
			pump := func(frames int) {
				for i := 0; i < frames; i++ {
					for j := 0; j < width; j++ {
						r := &recvs[pushed%window]
						r.Source, r.Tag = 1, 5
						if _, _, err := matcher.PostRecv(r); err != nil {
							t.Fatal(err)
						}
						pushed++
					}
					cq.Push(comp)
					if pushed%lag == 0 {
						for p.Messages() < uint64(pushed-lag) {
							runtime.Gosched()
						}
					}
				}
				for p.Messages() < uint64(pushed) {
					runtime.Gosched()
				}
			}

			pump(2 * window / width) // warm pools, CQ backing, formed buffer
			const framesPerRun = 256
			allocs := testing.AllocsPerRun(10, func() { pump(framesPerRun) })
			perMsg := allocs / float64(framesPerRun*width)
			// The benchmark criterion is 0 allocs/op after go test's
			// per-op rounding; allow only far-below-one noise (an
			// occasional pool refill after a GC cycle).
			if perMsg >= 0.1 {
				t.Fatalf("arrival hot path allocates: %.3f allocs/msg (%.1f allocs/run)", perMsg, allocs)
			}
		})
	}
}
