//go:build !race

package dpa

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so alloc-exactness guards skip under it.
const raceEnabled = false
